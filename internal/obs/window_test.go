package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock pins a Window to a manually advanced clock so slot rollover
// is deterministic under test.
type fakeClock struct {
	mu  sync.Mutex
	now int64
}

func (c *fakeClock) fn() func() int64 {
	return func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.now
	}
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += int64(d)
	c.mu.Unlock()
}

func newTestWindow(bounds []float64, slot time.Duration, slots int) (*Window, *fakeClock) {
	w := NewWindow(bounds, slot, slots)
	clk := &fakeClock{now: int64(slot) * 1000} // away from zero so seq math is boring
	w.nowFn = clk.fn()
	return w, clk
}

func TestWindowDisabledIsNoOp(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	w, _ := newTestWindow(LatencyBuckets, time.Second, 4)
	w.Observe(1e-3)
	if n := w.Count(); n != 0 {
		t.Errorf("disabled window recorded %d observations", n)
	}
}

func TestWindowCountSumAndQuantiles(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	// Bounds 1..10: observations land one per bucket, quantiles are
	// predictable by linear interpolation.
	w, _ := newTestWindow(LinearBuckets(1, 1, 10), time.Second, 4)
	var sum float64
	for i := 1; i <= 100; i++ {
		v := float64(i%10) + 0.5 // 0.5..9.5, uniform
		w.Observe(v)
		sum += v
	}
	if n := w.Count(); n != 100 {
		t.Fatalf("Count = %d, want 100", n)
	}
	if got := w.Sum(); math.Abs(got-sum) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, sum)
	}
	qs := w.Quantiles(0.5, 0.95, 0.99)
	// Uniform over [0.5, 9.5]: p50 ≈ 5, p95 ≈ 9.5 — the estimator is
	// bucket-resolution coarse, so assert the right neighbourhood.
	if qs[0] < 4 || qs[0] > 6 {
		t.Errorf("p50 = %v, want ≈5", qs[0])
	}
	if qs[1] < 9 || qs[1] > 10 {
		t.Errorf("p95 = %v, want ≈9.5", qs[1])
	}
	if qs[2] < qs[1] {
		t.Errorf("p99 %v < p95 %v", qs[2], qs[1])
	}
}

func TestWindowExpiresOldSlots(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	w, clk := newTestWindow(LinearBuckets(1, 1, 4), time.Second, 3)
	w.Observe(1)
	w.Observe(2)
	if n := w.Count(); n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
	// One slot forward: still inside the 3-slot window.
	clk.advance(time.Second)
	w.Observe(3)
	if n := w.Count(); n != 3 {
		t.Fatalf("after 1 slot Count = %d, want 3", n)
	}
	// Jump past the whole window: everything ages out.
	clk.advance(10 * time.Second)
	if n := w.Count(); n != 0 {
		t.Errorf("after expiry Count = %d, want 0", n)
	}
	if qs := w.Quantiles(0.5); qs[0] != 0 {
		t.Errorf("empty-window quantile = %v, want 0", qs[0])
	}
	// The ring recycles: new observations land cleanly in reused slots.
	w.Observe(4)
	if n := w.Count(); n != 1 {
		t.Errorf("after recycle Count = %d, want 1", n)
	}
}

func TestWindowOverflowBucketQuantile(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	w, _ := newTestWindow([]float64{1, 2}, time.Second, 2)
	for i := 0; i < 10; i++ {
		w.Observe(100) // all overflow
	}
	if q := w.Quantiles(0.99)[0]; q != 2 {
		t.Errorf("overflow quantile = %v, want clamped to last bound 2", q)
	}
}

func TestWindowConcurrentObserve(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	w, _ := newTestWindow(LatencyBuckets, time.Second, 4)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if n := w.Count(); n != goroutines*per {
		t.Errorf("Count = %d, want %d", n, goroutines*per)
	}
}

func TestWindowShapeAndSpan(t *testing.T) {
	w := NewWindow([]float64{1, 2, 3}, 2*time.Second, 5)
	sh := w.Shape()
	if len(sh.Bounds) != 3 || sh.SlotSeconds != 2 || sh.Slots != 5 {
		t.Errorf("Shape = %+v", sh)
	}
	if w.Span() != 10*time.Second {
		t.Errorf("Span = %v, want 10s", w.Span())
	}
	// Defensive floors.
	w2 := NewWindow(nil, 0, 0)
	if sh2 := w2.Shape(); sh2.Slots < 2 || sh2.SlotSeconds <= 0 {
		t.Errorf("floored Shape = %+v", sh2)
	}
}

func TestLinearBuckets(t *testing.T) {
	got := LinearBuckets(0.5, 0.25, 3)
	want := []float64{0.5, 0.75, 1.0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", got, want)
		}
	}
}
