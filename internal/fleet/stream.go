package fleet

import (
	"sync"
)

// eventLog is a campaign's append-only NDJSON event history with
// broadcast: every subscriber replays the full history from its own cursor
// and then follows live appends, so a client that attaches mid-campaign
// (or after it finished) sees exactly the same stream as one that attached
// before the first cell. Appends come from many worker goroutines; reads
// never block writers beyond the mutex handoff.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events [][]byte
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append adds one encoded event line and wakes every waiting subscriber.
func (l *eventLog) append(line []byte) {
	l.mu.Lock()
	l.events = append(l.events, line)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// close marks the stream complete: subscribers drain what is left and
// stop. Idempotent.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// next blocks until events beyond cursor exist (returning them and the new
// cursor) or the log is closed with nothing left (ok=false). The returned
// slice aliases the log's backing array; events are immutable once
// appended.
func (l *eventLog) next(cursor int) (batch [][]byte, newCursor int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for cursor >= len(l.events) && !l.closed {
		l.cond.Wait()
	}
	if cursor < len(l.events) {
		return l.events[cursor:], len(l.events), true
	}
	return nil, cursor, false
}

// wake nudges all subscribers so they can re-check an external condition
// (e.g. a dropped client connection detected by its context).
func (l *eventLog) wake() { l.cond.Broadcast() }
