// Package fleet is the production-scale face of the BIST: a long-running
// campaign service that accepts test-campaign specs over HTTP/JSON, shards
// their (stimulus, fault, unit) cells across a bounded job queue on top of
// internal/par, streams per-unit verdicts and running aggregate yield as
// NDJSON while a campaign executes, and exposes the obs/trace/provenance
// layer per campaign. Determinism is the load-bearing contract: every cell
// result is a pure function of the campaign's content (content-derived
// SplitMix64 seeds, index-free), so a campaign can be checkpointed and
// resumed after a kill, or split across `-shard i/n` processes and merged,
// and the final DetectionMatrix is byte-identical to the uninterrupted
// single-process run.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/obs/eventlog"
	"repro/internal/obs/provenance"
	"repro/internal/obs/trace"
	"repro/internal/par"
)

// Fleet instruments: campaign admission and outcome volume plus the cell
// throughput the service actually sustains. The par.queue.* gauges
// alongside these carry backlog depth and worker occupancy.
var (
	mSubmitted   = obs.C("fleet.campaigns.submitted")
	mDone        = obs.C("fleet.campaigns.done")
	mInterrupted = obs.C("fleet.campaigns.interrupted")
	mFailed      = obs.C("fleet.campaigns.failed")
	mCellsRun    = obs.C("fleet.cells.run")
	mCellsResume = obs.C("fleet.cells.resumed")
	mCkptWrites  = obs.C("fleet.checkpoint.writes")
	// mYieldPPM tracks the most recently active campaign's lifetime yield
	// in parts per million (gauges are integral; ppm keeps 6 digits).
	mYieldPPM = obs.G("fleet.yield.ppm")
)

// Spec is what a client submits: the campaign content plus service knobs.
// The grid carries the whole test definition — stimuli, fault selection,
// lot size (Units), seed, scale, yield threshold.
type Spec struct {
	// Name optionally labels the campaign in listings; it does not affect
	// the campaign's identity or results.
	Name string
	// Grid is the campaign definition (see campaign.Grid).
	Grid campaign.Grid
	// Trace requests a Perfetto trace of this campaign's execution,
	// downloadable from /campaigns/{id}/trace once the campaign ends.
	Trace bool
}

// ParseSpec decodes and validates a submission. Unknown fields are
// rejected — a typo in a fleet request must fail loudly.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("fleet: parse spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("fleet: parse spec: trailing data")
	}
	return s, nil
}

// Shard is the process-wide partition a bistd instance owns: the strided
// slice index ∈ [0, Count) of every campaign's sorted cell list.
type Shard struct {
	Index int
	Count int
}

// ParseShard reads the CLI "i/n" form.
func ParseShard(s string) (Shard, error) {
	var sh Shard
	if _, err := fmt.Sscanf(s, "%d/%d", &sh.Index, &sh.Count); err != nil {
		return Shard{}, fmt.Errorf("fleet: shard %q: want i/n", s)
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return Shard{}, fmt.Errorf("fleet: shard %d/%d out of range", sh.Index, sh.Count)
	}
	return sh, nil
}

// Config tunes a Server.
type Config struct {
	// CheckpointDir, when non-empty, makes campaign progress durable:
	// completed cells are written there periodically and a matching
	// submission after a restart resumes from the file instead of
	// re-running finished cells.
	CheckpointDir string
	// CheckpointEvery is the number of completed cells between checkpoint
	// writes (default 1: every cell).
	CheckpointEvery int
	// Shard is this process's partition of every campaign (zero value:
	// the whole cell list).
	Shard Shard
	// QueueDepth bounds the campaign admission queue; submissions beyond
	// it are refused with 503 (default 16).
	QueueDepth int
	// Workers sets the cell-queue worker count (default par.Workers()).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 1
	}
	if c.Shard.Count < 1 {
		c.Shard = Shard{Index: 0, Count: 1}
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 16
	}
	return c
}

// Campaign states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateInterrupted = "interrupted"
	StateFailed      = "failed"
)

// Campaign is one admitted spec: its plan, progress, event stream and
// artifacts. All mutable fields are guarded by mu.
type Campaign struct {
	ID    string
	Spec  Spec
	Shard Shard

	plan     *campaign.Plan
	gridHash string
	shardIDs []int // plan cell indices this process owns
	events   *eventLog
	manifest provenance.Manifest

	mu            sync.Mutex
	state         string
	errMsg        string
	done          map[string]campaign.CellResult
	resumed       int
	unitsRun      int64
	unitsRejected int64
	unitsErrored  int64
	sinceCkpt     int
	matrix        []byte // canonical DetectionMatrix once done
	metricsSnap   []byte // obs snapshot taken when the campaign ended
	traceRec      *trace.Recording

	tel     *telemetry       // rolling-window SLO view, fed by OnCellDone
	telSnap *TelemetryReport // frozen at campaign end
}

// Status is the public view of a campaign, also embedded in stream
// events: progress counts plus the running aggregate yield over every
// unit the campaign has tested so far.
type Status struct {
	ID    string
	Name  string
	State string
	Error string
	// ShardIndex/ShardCount echo the process partition the campaign ran
	// under.
	ShardIndex int
	ShardCount int
	// CellsTotal is the number of cells this process owns; CellsDone how
	// many have results (CellsResumed of those came from a checkpoint).
	CellsTotal   int
	CellsDone    int
	CellsResumed int
	// UnitsRun/UnitsRejected/UnitsErrored aggregate every device verdict
	// so far; Yield is 1 - rejected/run (1 when nothing ran yet).
	UnitsRun      int64
	UnitsRejected int64
	UnitsErrored  int64
	Yield         float64
}

func (c *Campaign) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:            c.ID,
		Name:          c.Spec.Name,
		State:         c.state,
		Error:         c.errMsg,
		ShardIndex:    c.Shard.Index,
		ShardCount:    c.Shard.Count,
		CellsTotal:    len(c.shardIDs),
		CellsDone:     len(c.done),
		CellsResumed:  c.resumed,
		UnitsRun:      c.unitsRun,
		UnitsRejected: c.unitsRejected,
		UnitsErrored:  c.unitsErrored,
		Yield:         1,
	}
	if c.unitsRun > 0 {
		st.Yield = 1 - float64(c.unitsRejected)/float64(c.unitsRun)
	}
	return st
}

// Server owns the campaign registry, the admission FIFO and the cell
// worker queue. Campaigns execute one at a time (cells fan out across the
// queue's workers): serial campaign execution is what makes the
// per-campaign trace recording and metrics snapshot well-defined, and a
// fleet scales by adding shard processes, not by interleaving campaigns
// inside one.
type Server struct {
	cfg Config

	mu    sync.Mutex
	camps map[string]*Campaign
	order []string

	queue  *par.Queue
	admit  chan *Campaign
	ctx    context.Context
	cancel context.CancelFunc
	execWG sync.WaitGroup

	// ckptMu serializes checkpoint writes: two workers finishing cells at
	// the same moment must not interleave on the shared temp file.
	ckptMu sync.Mutex

	// Health sampling state. draining flips the moment Shutdown begins so
	// /healthz turns away traffic before the drain completes; running and
	// lastCkptNanos are the watchdog's progress signals; watchdog is the
	// sampler itself, when one was started.
	draining      atomic.Bool
	running       atomic.Pointer[Campaign]
	lastCkptNanos atomic.Int64
	watchdog      atomic.Pointer[Watchdog]
}

// NewServer validates cfg, creates the checkpoint directory if requested,
// and starts the executor. Stop with Shutdown.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: checkpoint dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		camps:  map[string]*Campaign{},
		queue:  par.NewQueue(cfg.Workers, 0),
		admit:  make(chan *Campaign, cfg.QueueDepth),
		ctx:    ctx,
		cancel: cancel,
	}
	s.execWG.Add(1)
	go s.executor()
	return s, nil
}

// Submit admits a spec: builds its plan (validating the grid), derives the
// content-hash ID, loads any checkpoint, and enqueues it for execution.
// Submitting a spec whose ID is already registered returns the existing
// campaign (idempotent — a client retrying after a timeout must not fork a
// second run).
func (s *Server) Submit(spec Spec) (*Campaign, bool, error) {
	p, err := campaign.NewPlan(spec.Grid)
	if err != nil {
		return nil, false, err
	}
	gridHash, err := p.GridHash()
	if err != nil {
		return nil, false, err
	}
	id, err := campaignID(spec, s.cfg.Shard)
	if err != nil {
		return nil, false, err
	}
	shardIDs, err := p.ShardIndices(s.cfg.Shard.Index, s.cfg.Shard.Count)
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	if c, ok := s.camps[id]; ok {
		s.mu.Unlock()
		return c, false, nil
	}
	c := &Campaign{
		ID:       id,
		Spec:     spec,
		Shard:    s.cfg.Shard,
		plan:     p,
		gridHash: gridHash,
		shardIDs: shardIDs,
		events:   newEventLog(),
		state:    StateQueued,
		done:     map[string]campaign.CellResult{},
		tel:      newTelemetry(),
	}
	p.OnCellDone = c.noteTelemetry
	name := spec.Name
	if name == "" {
		name = "campaign-" + id
	}
	man, err := provenance.Collect("bistd", name, spec.Grid.Seed, spec)
	if err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	c.manifest = man
	s.camps[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := s.loadCheckpoint(c); err != nil {
		// A bad checkpoint must not silently discard completed work or
		// poison the matrix: refuse the submission.
		s.mu.Lock()
		delete(s.camps, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return nil, false, err
	}

	select {
	case s.admit <- c:
	default:
		s.mu.Lock()
		delete(s.camps, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		if eventlog.On() {
			eventlog.Emit("fleet.admit.reject",
				slog.String("campaign", id),
				slog.String("name", spec.Name),
				slog.String("reason", "queue_full"))
		}
		return nil, false, errQueueFull
	}
	mSubmitted.Inc()
	if eventlog.On() {
		eventlog.Emit("fleet.admit",
			slog.String("campaign", c.ID),
			slog.String("name", spec.Name),
			slog.Int("shard_index", c.Shard.Index),
			slog.Int("shard_count", c.Shard.Count),
			slog.Int("cells", len(c.shardIDs)),
			slog.Int("resumed", c.resumedCount()))
	}
	c.emitState()
	return c, true, nil
}

// resumedCount reads the checkpoint-resumed cell count.
func (c *Campaign) resumedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumed
}

// errQueueFull is surfaced as 503: the admission queue is a fixed-size
// buffer, not an unbounded backlog.
var errQueueFull = fmt.Errorf("fleet: admission queue full")

// Campaign returns a campaign by ID.
func (s *Server) Campaign(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.camps[id]
	return c, ok
}

// Statuses lists every campaign in admission order.
func (s *Server) Statuses() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if c, ok := s.Campaign(id); ok {
			out = append(out, c.status())
		}
	}
	return out
}

// Shutdown drains the fleet: no new cells are scheduled, in-flight cells
// finish, the running campaign writes a final checkpoint and is marked
// interrupted (or done, if the drain raced its completion), queued
// campaigns are marked interrupted, and the executor exits. The context
// bounds how long to wait for in-flight work.
func (s *Server) Shutdown(ctx context.Context) error {
	// Flip /healthz to draining before anything else: a load balancer must
	// stop sending campaigns here while in-flight cells finish.
	s.draining.Store(true)
	if w := s.watchdog.Swap(nil); w != nil {
		w.Close()
	}
	s.cancel()
	execDone := make(chan struct{})
	go func() {
		s.execWG.Wait()
		s.queue.Close()
		close(execDone)
	}()
	select {
	case <-execDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: shutdown deadline exceeded with cells in flight: %w", ctx.Err())
	}
}

// executor is the single campaign loop: admit in FIFO order, run each
// campaign's cells over the worker queue, handle the drain signal.
func (s *Server) executor() {
	defer s.execWG.Done()
	for {
		select {
		case <-s.ctx.Done():
			// Drain: everything still queued is interrupted where it
			// stands (zero or resumed progress, all checkpointed).
			for {
				select {
				case c := <-s.admit:
					s.finishInterrupted(c)
				default:
					return
				}
			}
		case c := <-s.admit:
			s.runCampaign(c)
		}
	}
}

// runCampaign executes one campaign's shard partition cell by cell across
// the worker queue, checkpointing as results land.
func (s *Server) runCampaign(c *Campaign) {
	s.running.Store(c)
	defer s.running.Store(nil)
	// Baseline the checkpoint-age clock at campaign start so the watchdog
	// measures "since last write or start", not "since process boot".
	s.lastCkptNanos.Store(time.Now().UnixNano())
	c.setState(StateRunning, "")
	c.emitState()

	tracing := false
	if c.Spec.Trace {
		if err := trace.StartRecording(trace.Config{}); err == nil {
			tracing = true
		}
	}

	pending := make([]int, 0, len(c.shardIDs))
	doneKeys := c.doneKeys()
	for _, i := range c.shardIDs {
		if !doneKeys[c.plan.Cells[i].Key()] {
			pending = append(pending, i)
		}
	}

	var wg sync.WaitGroup
	interrupted := false
	for _, i := range pending {
		if s.ctx.Err() != nil {
			interrupted = true
			break
		}
		i := i
		wg.Add(1)
		ok := s.queue.Submit(func() {
			defer wg.Done()
			res, err := c.plan.RunCell(i, c.noteUnit)
			if err != nil {
				c.setState(StateFailed, err.Error())
				return
			}
			mCellsRun.Inc()
			s.noteCell(c, res)
		})
		if !ok {
			wg.Done()
			interrupted = true
			break
		}
	}
	wg.Wait()

	if tracing {
		if rec := trace.StopRecording(); rec != nil {
			rec.SetManifest(c.manifest)
			c.mu.Lock()
			c.traceRec = rec
			c.mu.Unlock()
		}
	}

	s.writeCheckpoint(c) // final checkpoint, regardless of cadence
	if snap, err := obs.MarshalSnapshot(); err == nil {
		c.mu.Lock()
		c.metricsSnap = snap
		c.mu.Unlock()
	}

	c.mu.Lock()
	state := c.state
	complete := len(c.done) == len(c.shardIDs)
	c.mu.Unlock()
	switch {
	case state == StateFailed:
		mFailed.Inc()
	case complete:
		if err := s.foldMatrix(c); err != nil {
			c.setState(StateFailed, err.Error())
			mFailed.Inc()
		} else {
			c.setState(StateDone, "")
			mDone.Inc()
		}
	case interrupted || s.ctx.Err() != nil:
		c.setState(StateInterrupted, "")
		mInterrupted.Inc()
	default:
		// Cells missing without a drain: their results were lost to cell
		// errors already recorded via StateFailed, or this is a logic
		// error worth failing loudly on.
		c.setState(StateFailed, "fleet: campaign ended with missing cells")
		mFailed.Inc()
	}
	c.freezeTelemetry()
	c.emitState()
	c.events.close()
}

// finishInterrupted handles campaigns still queued when the drain hit.
func (s *Server) finishInterrupted(c *Campaign) {
	s.writeCheckpoint(c)
	c.setState(StateInterrupted, "")
	mInterrupted.Inc()
	c.freezeTelemetry()
	c.emitState()
	c.events.close()
}

// foldMatrix builds and stores the canonical matrix from the completed
// partition. For an unsharded campaign this is the full detection matrix;
// for shard i/n it is the partition's fold, and the byte-identical full
// matrix comes from merging the shard checkpoints (bistd -merge).
func (s *Server) foldMatrix(c *Campaign) error {
	c.mu.Lock()
	cells := make([]campaign.CellResult, 0, len(c.done))
	for _, r := range c.done {
		cells = append(cells, r)
	}
	c.mu.Unlock()
	m := c.plan.Fold(cells)
	b, err := m.MarshalCanonical()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.matrix = b
	c.mu.Unlock()
	return nil
}

// noteUnit streams one device verdict and folds it into the running
// aggregate. Called from worker goroutines.
func (c *Campaign) noteUnit(v campaign.UnitVerdict) {
	c.mu.Lock()
	c.unitsRun++
	if v.Err != "" {
		c.unitsErrored++
	}
	if v.Err != "" || !v.Pass {
		c.unitsRejected++
	}
	c.mu.Unlock()
	c.emit(unitEvent{Type: "unit", Verdict: v})
}

// noteCell records a completed cell, streams it with the running
// aggregate, and checkpoints on the configured cadence.
func (s *Server) noteCell(c *Campaign, r campaign.CellResult) {
	c.mu.Lock()
	c.done[r.Stimulus+"\x00"+r.Fault] = r
	c.sinceCkpt++
	writeCkpt := c.sinceCkpt >= s.cfg.CheckpointEvery
	if writeCkpt {
		c.sinceCkpt = 0
	}
	c.mu.Unlock()
	c.emit(cellEvent{Type: "cell", Cell: r, Status: c.status()})
	if writeCkpt {
		s.writeCheckpoint(c)
	}
}

// doneKeys snapshots the completed cell keys.
func (c *Campaign) doneKeys() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.done))
	for k := range c.done {
		out[k] = true
	}
	return out
}

func (c *Campaign) setState(state, errMsg string) {
	c.mu.Lock()
	// Failed is sticky: a cell error must not be overwritten by the
	// epilogue's interrupted/done classification.
	if c.state != StateFailed {
		c.state = state
		c.errMsg = errMsg
	}
	c.mu.Unlock()
}

// Checkpoint builds the campaign's current checkpoint value.
func (c *Campaign) Checkpoint() *campaign.Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	ck := &campaign.Checkpoint{
		GridHash:   c.gridHash,
		ShardIndex: c.Shard.Index,
		ShardCount: c.Shard.Count,
	}
	for _, r := range c.done {
		ck.Add(r)
	}
	return ck
}

// checkpointPath is CheckpointDir/<campaign id>.ckpt.json.
func (s *Server) checkpointPath(c *Campaign) string {
	return filepath.Join(s.cfg.CheckpointDir, c.ID+".ckpt.json")
}

// writeCheckpoint persists the current completed-cell set atomically
// (write-to-temp, rename) so a kill mid-write can never leave a truncated
// checkpoint that a resume would trust.
func (s *Server) writeCheckpoint(c *Campaign) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	b, err := c.Checkpoint().MarshalCanonical()
	if err != nil {
		return
	}
	path := s.checkpointPath(c)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return
	}
	mCkptWrites.Inc()
	s.lastCkptNanos.Store(time.Now().UnixNano())
	if eventlog.On() {
		c.mu.Lock()
		cells := len(c.done)
		c.mu.Unlock()
		eventlog.Emit("fleet.checkpoint.write",
			slog.String("campaign", c.ID),
			slog.Int("shard_index", c.Shard.Index),
			slog.Int("cells", cells))
	}
}

// loadCheckpoint seeds a freshly admitted campaign from its checkpoint
// file, validating hash, shard and cell identity before trusting any of
// it. Completed cells are counted as resumed and will be skipped.
func (s *Server) loadCheckpoint(c *Campaign) error {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	data, err := os.ReadFile(s.checkpointPath(c))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("fleet: read checkpoint: %w", err)
	}
	ck, err := campaign.ParseCheckpoint(data)
	if err != nil {
		return err
	}
	if err := ck.Validate(c.plan); err != nil {
		return err
	}
	if ck.ShardIndex != c.Shard.Index || ck.ShardCount != c.Shard.Count {
		return fmt.Errorf("fleet: checkpoint shard %d/%d does not match process shard %d/%d",
			ck.ShardIndex, ck.ShardCount, c.Shard.Index, c.Shard.Count)
	}
	owned := make(map[string]bool, len(c.shardIDs))
	for _, i := range c.shardIDs {
		owned[c.plan.Cells[i].Key()] = true
	}
	c.mu.Lock()
	for key, r := range ck.Done() {
		if !owned[key] {
			c.mu.Unlock()
			return fmt.Errorf("fleet: checkpoint carries cell outside this shard's partition")
		}
		c.done[key] = r
		c.resumed++
	}
	resumed := c.resumed
	c.mu.Unlock()
	mCellsResume.Add(int64(resumed))
	return nil
}

// campaignID derives the content-hash identity of (spec, shard): the same
// submission always lands on the same campaign, which is what makes
// retries idempotent and restarts resumable.
func campaignID(spec Spec, sh Shard) (string, error) {
	return provenance.Hash(struct {
		Spec       Spec
		ShardIndex int
		ShardCount int
	}{spec, sh.Index, sh.Count})
}

// Stream events. Encoded with encoding/json (compact, one line each) —
// the NDJSON stream is an operational surface, not a golden-pinned one.
type unitEvent struct {
	Type    string
	Verdict campaign.UnitVerdict
}

type cellEvent struct {
	Type   string
	Cell   campaign.CellResult
	Status Status
}

type stateEvent struct {
	Type   string
	Status Status
}

func (c *Campaign) emit(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.events.append(b)
}

func (c *Campaign) emitState() {
	st := c.status()
	if eventlog.On() {
		attrs := []slog.Attr{
			slog.String("campaign", c.ID),
			slog.String("state", st.State),
			slog.Int("shard_index", st.ShardIndex),
			slog.Int("shard_count", st.ShardCount),
			slog.Int("cells_done", st.CellsDone),
			slog.Int("cells_total", st.CellsTotal),
		}
		if st.Error != "" {
			attrs = append(attrs, slog.String("error", st.Error))
		}
		eventlog.Emit("fleet.state", attrs...)
	}
	c.emit(stateEvent{Type: "state", Status: st})
}

// WaitState blocks until the campaign reaches a terminal state or the
// timeout passes, returning the final status. Used by the CLI client and
// tests; HTTP clients follow the stream instead.
func (c *Campaign) WaitState(timeout time.Duration) Status {
	deadline := time.Now().Add(timeout)
	for {
		st := c.status()
		switch st.State {
		case StateDone, StateFailed, StateInterrupted:
			return st
		}
		if time.Now().After(deadline) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
}
