package fleet

import (
	"log/slog"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/obs/eventlog"
)

// Telemetry window shape: 12 five-second slots — a one-minute rolling
// view, wide enough to smooth single-cell jitter, short enough that an
// operator dashboard reacts to a stall within a scrape interval or two.
const (
	telSlot  = 5 * time.Second
	telSlots = 12
)

// telemetry is a campaign's rolling-window view: wall-clock SLO signals
// (cell latency, unit throughput, running yield) that decay as the window
// slides. Everything here is observational — none of it feeds back into
// scheduling and none of it reaches a golden-pinned artifact; that is
// what keeps the fleet's determinism contract intact while still giving
// operators live p95s.
type telemetry struct {
	cellSeconds *obs.Window // seconds per completed cell
	unitsPerSec *obs.Window // per-cell unit throughput
	yield       *obs.Window // running campaign yield sampled at each cell
}

func newTelemetry() *telemetry {
	return &telemetry{
		cellSeconds: obs.NewWindow(obs.LatencyBuckets, telSlot, telSlots),
		// Unit throughput spans sub-1/s (slow full-physics cells) to
		// thousands/s (resumed or trivial cells).
		unitsPerSec: obs.NewWindow(obs.ExpBuckets(0.25, 4, 10), telSlot, telSlots),
		// Yield lives in [0, 1]; 5% resolution is plenty for an SLO view.
		yield: obs.NewWindow(obs.LinearBuckets(0.05, 0.05, 20), telSlot, telSlots),
	}
}

// WindowStats is the JSON view of one rolling window.
type WindowStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func windowStats(w *obs.Window) WindowStats {
	qs := w.Quantiles(0.5, 0.95, 0.99)
	return WindowStats{
		Count: w.Count(),
		Sum:   w.Sum(),
		P50:   qs[0],
		P95:   qs[1],
		P99:   qs[2],
	}
}

// TelemetryReport is the payload of GET /campaigns/{id}/telemetry: the
// campaign's rolling-window SLO view plus its lifetime yield. For a
// campaign still running the report is live (quantiles move, old slots
// age out); once the campaign ends the last report is frozen, because a
// rolling window scraped an hour after completion would be empty.
type TelemetryReport struct {
	ID            string      `json:"id"`
	State         string      `json:"state"`
	WindowSeconds float64     `json:"window_seconds"`
	CellSeconds   WindowStats `json:"cell_seconds"`
	UnitsPerSec   WindowStats `json:"units_per_sec"`
	Yield         WindowStats `json:"yield"`
	// YieldPPM is the campaign-lifetime yield in parts per million —
	// the same quantity the fleet.yield.ppm gauge tracks for the most
	// recently active campaign.
	YieldPPM int64 `json:"yield_ppm"`
}

// telemetryReport builds the live report. Caller must not hold c.mu.
func (c *Campaign) telemetryReport() TelemetryReport {
	st := c.status()
	return TelemetryReport{
		ID:            c.ID,
		State:         st.State,
		WindowSeconds: c.tel.cellSeconds.Span().Seconds(),
		CellSeconds:   windowStats(c.tel.cellSeconds),
		UnitsPerSec:   windowStats(c.tel.unitsPerSec),
		Yield:         windowStats(c.tel.yield),
		YieldPPM:      int64(st.Yield * 1e6),
	}
}

// noteTelemetry is the campaign's OnCellDone hook: it feeds the rolling
// windows and the fleet yield gauge, and emits the per-cell completion
// event. Runs on the worker goroutine that finished the cell.
func (c *Campaign) noteTelemetry(_ int, r campaign.CellResult, elapsed time.Duration) {
	sec := elapsed.Seconds()
	c.tel.cellSeconds.Observe(sec)
	if sec > 0 && r.Units > 0 {
		c.tel.unitsPerSec.Observe(float64(r.Units) / sec)
	}
	st := c.status()
	c.tel.yield.Observe(st.Yield)
	mYieldPPM.Set(int64(st.Yield * 1e6))
	if eventlog.On() {
		eventlog.Emit("fleet.cell.done",
			slog.String("campaign", c.ID),
			slog.String("stimulus", r.Stimulus),
			slog.String("fault", r.Fault),
			slog.Int("units", r.Units),
			slog.Int("rejected", r.Rejected),
			slog.Duration("took", elapsed))
	}
}

// freezeTelemetry stores the final report so the endpoint keeps serving
// meaningful numbers after the windows age out. Called from the campaign
// epilogue, after the terminal state is set.
func (c *Campaign) freezeTelemetry() {
	rep := c.telemetryReport()
	c.mu.Lock()
	c.telSnap = &rep
	c.mu.Unlock()
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request, c *Campaign) {
	c.mu.Lock()
	frozen := c.telSnap
	c.mu.Unlock()
	if frozen != nil {
		writeJSON(w, http.StatusOK, *frozen)
		return
	}
	writeJSON(w, http.StatusOK, c.telemetryReport())
}
