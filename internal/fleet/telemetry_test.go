package fleet

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/eventlog"
	"repro/internal/testkit"
)

// drainEvents blocks until the campaign's event stream is closed — which
// happens strictly after the terminal state event was emitted and counted,
// so telemetry read after this is complete, not racing the epilogue.
func drainEvents(c *Campaign) {
	cursor := 0
	for {
		_, next, ok := c.events.next(cursor)
		if !ok {
			return
		}
		cursor = next
	}
}

// TestTelemetryEndpoint pins the per-campaign SLO view: while the
// campaign runs the report is live; once it ends the report freezes with
// the full cell count and a sane yield, and keeps serving those numbers.
func TestTelemetryEndpoint(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	c := submitAndWait(t, s, Spec{Name: "telemetry", Grid: fleetGrid()})
	drainEvents(c)

	body := getOK(t, ts.URL+"/campaigns/"+c.ID+"/telemetry")
	var rep TelemetryReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("telemetry not JSON: %v\n%s", err, body)
	}
	if rep.ID != c.ID || rep.State != StateDone {
		t.Errorf("report identity = (%s, %s), want (%s, done)", rep.ID, rep.State, c.ID)
	}
	if rep.CellSeconds.Count != 6 {
		t.Errorf("cell_seconds.count = %d, want 6", rep.CellSeconds.Count)
	}
	if rep.CellSeconds.Sum <= 0 || rep.CellSeconds.P95 < rep.CellSeconds.P50 {
		t.Errorf("cell_seconds stats implausible: %+v", rep.CellSeconds)
	}
	if rep.UnitsPerSec.Count != 6 {
		t.Errorf("units_per_sec.count = %d, want 6", rep.UnitsPerSec.Count)
	}
	if rep.Yield.Count != 6 {
		t.Errorf("yield.count = %d, want 6", rep.Yield.Count)
	}
	if rep.YieldPPM < 0 || rep.YieldPPM > 1_000_000 {
		t.Errorf("yield_ppm = %d, want within [0, 1e6]", rep.YieldPPM)
	}
	if rep.WindowSeconds != (telSlot * telSlots).Seconds() {
		t.Errorf("window_seconds = %v", rep.WindowSeconds)
	}

	// Frozen: a second scrape returns the same bytes even though time has
	// passed (a live window would age observations out).
	body2 := getOK(t, ts.URL+"/campaigns/"+c.ID+"/telemetry")
	if string(body2) != string(body) {
		t.Error("frozen telemetry changed between scrapes")
	}

	// Unknown campaigns 404.
	if code, _ := getStatus(t, ts.URL+"/campaigns/nope/telemetry"); code != 404 {
		t.Errorf("unknown campaign telemetry = %d, want 404", code)
	}
}

// TestTelemetryNormalizedGolden pins the determinism boundary of the
// observability layer: strip everything wall-clock (counter/gauge values,
// histogram fills, ticker-driven watchdog events) and what remains —
// event counts by name, instrument names, bucket shapes — is byte-
// identical at 1, 2 and 8 workers, and matches the golden file.
func TestTelemetryNormalizedGolden(t *testing.T) {
	prevObs := obs.SetEnabled(true)
	defer obs.SetEnabled(prevObs)
	prevLog := eventlog.Set(slog.New(eventlog.NewJSONHandler(io.Discard)))
	defer eventlog.Set(prevLog)

	prefixes := []string{"event.", "fleet.", "par.queue.", "campaign."}
	var first []byte
	for _, workers := range []int{1, 2, 8} {
		obs.Reset()
		s := newTestServer(t, Config{
			Workers:         workers,
			CheckpointDir:   filepath.Join(t.TempDir(), "ckpt"),
			CheckpointEvery: 1,
		})
		c := submitAndWait(t, s, Spec{Name: "normalized", Grid: fleetGrid()})
		drainEvents(c)

		nt := obs.Normalized(prefixes...)
		// Spot-check the deterministic event counts before golden-diffing:
		// 6 cells always complete exactly once, 6 cadence checkpoints plus
		// the final write, 3 state transitions (queued, running, done).
		if nt.Events["fleet.cell.done"] != 6 {
			t.Errorf("workers=%d: fleet.cell.done = %d, want 6", workers, nt.Events["fleet.cell.done"])
		}
		if nt.Events["fleet.checkpoint.write"] != 7 {
			t.Errorf("workers=%d: fleet.checkpoint.write = %d, want 7", workers, nt.Events["fleet.checkpoint.write"])
		}
		if nt.Events["fleet.state"] != 3 {
			t.Errorf("workers=%d: fleet.state = %d, want 3", workers, nt.Events["fleet.state"])
		}

		b, err := testkit.MarshalCanonical(nt)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
			testkit.Golden(t, filepath.Join("testdata", "golden", "telemetry_normalized.json"), nt, testkit.Options{})
		} else if string(b) != string(first) {
			t.Errorf("workers=%d: normalized telemetry differs from workers=1:\n%s\nvs\n%s", workers, b, first)
		}

		ctx, cancel := testContext(5 * time.Second)
		s.Shutdown(ctx)
		cancel()
	}
}
