package fleet

import (
	"log/slog"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/eventlog"
)

// Watchdog instruments. These are deliberately excluded from the
// normalized telemetry snapshot (see obs.Normalized): a ticker-driven
// sampler fires a wall-clock-dependent number of times per run.
var (
	mWatchTicks       = obs.C("watchdog.ticks")
	mWatchTransitions = obs.C("watchdog.transitions")
)

// Health states, ordered by severity. ok and degraded serve 200 from
// /healthz (degraded is a warning, not an outage); stalled and draining
// serve 503 so a load balancer stops routing new campaigns here.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthStalled  = "stalled"
	HealthDraining = "draining"
)

// Health cause codes, machine-readable so a fleet controller can react
// without parsing prose.
const (
	CauseQueueSaturated  = "queue_saturated"
	CauseNoCompletion    = "no_completion"
	CauseCheckpointStale = "checkpoint_stale"
)

// Health is the /healthz payload: a state plus the machine-readable
// causes that produced it and the raw samples they were judged from.
type Health struct {
	State  string   `json:"state"`
	Causes []string `json:"causes,omitempty"`
	// Queue occupancy at the last watchdog sample.
	QueueDepth  int   `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`
	QueueActive int64 `json:"queue_active"`
	// CellsDone is the queue's lifetime completed-job count — the
	// monotonic progress signal the stall detector watches.
	CellsDone int64 `json:"cells_done"`
	// RunningCampaign is the ID of the campaign currently executing,
	// empty when the fleet is idle.
	RunningCampaign string `json:"running_campaign,omitempty"`
}

// WatchdogConfig tunes the fleet health sampler.
type WatchdogConfig struct {
	// Interval between samples (default 1s).
	Interval time.Duration
	// StallIntervals is how many consecutive samples may pass with a
	// campaign running but no job completing before the fleet is declared
	// stalled (default 3).
	StallIntervals int
	// CheckpointCadences is how many intervals a running campaign may go
	// without a checkpoint write (when checkpointing is configured)
	// before health degrades to checkpoint_stale (default 5).
	CheckpointCadences int
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.StallIntervals < 1 {
		c.StallIntervals = 3
	}
	if c.CheckpointCadences < 1 {
		c.CheckpointCadences = 5
	}
	return c
}

// Watchdog samples the server's execution machinery on a ticker and
// distils the readings into a Health report. It reads only queue-local
// atomics and server state — never obs metrics, so it works with
// BIST_METRICS off — and never influences scheduling: a stalled verdict
// changes the /healthz status code, nothing else.
type Watchdog struct {
	s   *Server
	cfg WatchdogConfig

	stop chan struct{}
	done chan struct{}

	mu     sync.Mutex
	health Health

	// Stall tracking across ticks.
	lastDone   int64
	idleTicks  int // consecutive ticks with a running campaign and no completions
	satTicks   int // consecutive ticks with the queue buffer full
	firstState bool
}

// StartWatchdog begins health sampling. The returned Watchdog is also
// installed on the server, upgrading /healthz from a liveness ping to a
// readiness report. Close it (or Shutdown the server) to stop sampling.
func (s *Server) StartWatchdog(cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{
		s:    s,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	w.health = Health{State: HealthOK}
	w.lastDone = s.queue.Done()
	s.watchdog.Store(w)
	go w.run()
	return w
}

// Close stops the sampler. Idempotent is not required — the server calls
// it exactly once from Shutdown, and external callers who started it
// early may call it instead; the select guards a double close.
func (w *Watchdog) Close() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

func (w *Watchdog) run() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.tick()
		}
	}
}

// Health returns the latest sample.
func (w *Watchdog) Health() Health {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.health
}

// tick takes one sample and rejudges health.
func (w *Watchdog) tick() {
	mWatchTicks.Inc()
	s := w.s

	h := Health{
		QueueDepth:  s.queue.Depth(),
		QueueCap:    s.queue.Cap(),
		QueueActive: s.queue.Active(),
		CellsDone:   s.queue.Done(),
	}
	var running *Campaign
	if c := s.running.Load(); c != nil {
		running = c
		h.RunningCampaign = c.ID
	}

	// Progress: with a campaign running, completed-job count must move.
	if running != nil && h.CellsDone == w.lastDone {
		w.idleTicks++
	} else {
		w.idleTicks = 0
	}
	w.lastDone = h.CellsDone

	// Saturation: a full buffer is backpressure by design; a full buffer
	// that stays full is a warning.
	if h.QueueCap > 0 && h.QueueDepth >= h.QueueCap {
		w.satTicks++
	} else {
		w.satTicks = 0
	}

	state := HealthOK
	if w.satTicks >= w.cfg.StallIntervals {
		h.Causes = append(h.Causes, CauseQueueSaturated)
		state = HealthDegraded
	}
	if s.cfg.CheckpointDir != "" && running != nil {
		if last := s.lastCkptNanos.Load(); last > 0 {
			age := time.Duration(time.Now().UnixNano() - last)
			if age > time.Duration(w.cfg.CheckpointCadences)*w.cfg.Interval {
				h.Causes = append(h.Causes, CauseCheckpointStale)
				state = HealthDegraded
			}
		}
	}
	if w.idleTicks >= w.cfg.StallIntervals {
		h.Causes = append(h.Causes, CauseNoCompletion)
		state = HealthStalled
	}
	h.State = state

	w.mu.Lock()
	prev := w.health.State
	w.health = h
	first := !w.firstState
	w.firstState = true
	w.mu.Unlock()

	if prev != state && !first {
		mWatchTransitions.Inc()
	}
	if prev != state && eventlog.On() {
		attrs := []slog.Attr{
			slog.String("from", prev),
			slog.String("to", state),
			slog.Int("queue_depth", h.QueueDepth),
			slog.Int64("queue_active", h.QueueActive),
			slog.Int64("cells_done", h.CellsDone),
		}
		if h.RunningCampaign != "" {
			attrs = append(attrs, slog.String("campaign", h.RunningCampaign))
		}
		for _, cause := range h.Causes {
			attrs = append(attrs, slog.String("cause", cause))
		}
		eventlog.Emit("watchdog.state", attrs...)
	}
}

// Health is the server-level readiness view: draining dominates (set the
// moment Shutdown begins), then the watchdog's verdict when one is
// running, else a bare ok — a server without a watchdog still reports
// liveness, it just cannot detect stalls.
func (s *Server) Health() Health {
	if s.draining.Load() {
		return Health{State: HealthDraining}
	}
	if w := s.watchdog.Load(); w != nil {
		return w.Health()
	}
	return Health{State: HealthOK}
}
