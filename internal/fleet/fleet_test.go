package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

func testContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// fleetGrid is the test campaign: two stimuli against two catalogue faults
// (plus the implicit healthy row) → 6 cells, small enough to run in
// milliseconds but wide enough to shard, interrupt and resume.
func fleetGrid() campaign.Grid {
	return campaign.Grid{
		Stimuli: []campaign.StimulusSpec{
			{
				Name:          "qpsk-tiny",
				Constellation: "QPSK",
				PRBSOrder:     7,
				PRBSSeed:      0x55,
				BurstLen:      64,
				Mask:          "wideband-qpsk-15M",
			},
			{
				Name:          "qam16-tiny",
				Constellation: "16QAM",
				PRBSOrder:     7,
				PRBSSeed:      0x2B,
				BurstLen:      64,
				Mask:          "wideband-qpsk-15M",
			},
		},
		Faults:         []string{"pa-compression", "dead-gain"},
		Units:          2,
		Seed:           42,
		Scale:          0.1,
		YieldThreshold: 0.5,
	}
}

// singleProcessMatrix is the reference bytes every fleet path must match.
func singleProcessMatrix(t *testing.T, g campaign.Grid) []byte {
	t.Helper()
	m, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := testContext(5 * time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func submitAndWait(t *testing.T, s *Server, spec Spec) *Campaign {
	t.Helper()
	c, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := c.WaitState(30 * time.Second)
	if st.State != StateDone {
		t.Fatalf("campaign ended %s (%s), want done", st.State, st.Error)
	}
	return c
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Shard
		ok   bool
	}{
		{"0/1", Shard{0, 1}, true},
		{"2/3", Shard{2, 3}, true},
		{"3/3", Shard{}, false},
		{"-1/2", Shard{}, false},
		{"0/0", Shard{}, false},
		{"banana", Shard{}, false},
	} {
		got, err := ParseShard(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseShard(%q) accepted", tc.in)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"Name":"x","Bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{} {}`)); err == nil {
		t.Error("trailing data accepted")
	}
}

// TestEndToEndHTTP drives the whole HTTP surface: submit → idempotent
// resubmit → stream replay → matrix/checkpoint/manifest/trace, and pins
// the served matrix to the single-process bytes.
func TestEndToEndHTTP(t *testing.T) {
	g := fleetGrid()
	want := singleProcessMatrix(t, g)

	s := newTestServer(t, Config{CheckpointDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	body, err := json.Marshal(Spec{Name: "e2e", Grid: g, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" || st.CellsTotal != 6 {
		t.Fatalf("submit status = %+v, want an ID and 6 cells", st)
	}

	// Identical resubmission must return the same campaign, not fork one.
	resp, err = http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st2 Status
	json.NewDecoder(resp.Body).Decode(&st2)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st2.ID != st.ID {
		t.Errorf("resubmit: %s id=%s, want 200 with id %s", resp.Status, st2.ID, st.ID)
	}

	// The stream replays history and follows the campaign to its end.
	streamResp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content-type %q", ct)
	}
	var unitEvents, cellEvents int
	var finalState Status
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type   string
			Status Status
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "unit":
			unitEvents++
		case "cell":
			cellEvents++
		case "state":
			finalState = ev.Status
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if finalState.State != StateDone {
		t.Fatalf("stream ended in state %s (%s)", finalState.State, finalState.Error)
	}
	if cellEvents != 6 || unitEvents != 6*g.Units {
		t.Errorf("stream carried %d cell / %d unit events, want 6 / %d", cellEvents, unitEvents, 6*g.Units)
	}
	if finalState.UnitsRun != int64(6*g.Units) {
		t.Errorf("final status ran %d units, want %d", finalState.UnitsRun, 6*g.Units)
	}

	got := getOK(t, ts.URL+"/campaigns/"+st.ID+"/matrix")
	if !bytes.Equal(got, want) {
		t.Error("served matrix differs from single-process Grid.Run bytes")
	}

	ckB := getOK(t, ts.URL+"/campaigns/"+st.ID+"/checkpoint")
	ck, err := campaign.ParseCheckpoint(ckB)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Cells) != 6 {
		t.Errorf("served checkpoint has %d cells, want 6", len(ck.Cells))
	}

	man := getOK(t, ts.URL+"/campaigns/"+st.ID+"/manifest")
	if !bytes.Contains(man, []byte("bistd")) {
		t.Errorf("manifest does not name the tool: %s", man)
	}

	tr := getOK(t, ts.URL+"/campaigns/"+st.ID+"/trace")
	if !bytes.Contains(tr, []byte("traceEvents")) {
		t.Error("trace is not Chrome JSON")
	}

	list := getOK(t, ts.URL+"/campaigns")
	var all []Status
	if err := json.Unmarshal(list, &all); err != nil || len(all) != 1 {
		t.Errorf("list = %s (%v), want one campaign", list, err)
	}

	if r, err := http.Get(ts.URL + "/campaigns/nope"); err == nil {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("unknown campaign: %s, want 404", r.Status)
		}
	}
	if !bytes.Contains(getOK(t, ts.URL+"/healthz"), []byte("ok")) {
		t.Error("healthz not ok")
	}
}

func getOK(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(data)))
	}
	return data
}

// TestResumeFromCheckpointByteIdentity is the deterministic half of the
// kill-and-resume contract: a server finding a partial checkpoint on disk
// skips the finished cells and still produces the single-process bytes.
func TestResumeFromCheckpointByteIdentity(t *testing.T) {
	g := fleetGrid()
	want := singleProcessMatrix(t, g)
	spec := Spec{Name: "resume", Grid: g}

	// Learn the campaign's content-hash ID from a throwaway server.
	probe := newTestServer(t, Config{})
	pc, _, err := probe.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := pc.ID

	// Fabricate the partial state a killed server would have left: the
	// first half of the cells, completed and checkpointed.
	p, err := campaign.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := campaign.NewCheckpoint(p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const partial = 3
	for i := 0; i < partial; i++ {
		r, err := p.RunCell(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		ck.Add(r)
	}
	b, err := ck.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, id+".ckpt.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{CheckpointDir: dir})
	c := submitAndWait(t, s, spec)
	st := c.status()
	if st.CellsResumed != partial {
		t.Errorf("resumed %d cells, want %d", st.CellsResumed, partial)
	}
	c.mu.Lock()
	got := c.matrix
	c.mu.Unlock()
	if !bytes.Equal(got, want) {
		t.Error("resumed matrix differs from single-process bytes")
	}
}

// TestShutdownInterruptsAndResumes kills a server mid-campaign and
// resumes on a fresh one sharing the checkpoint dir: whatever progress
// survived the drain is skipped, and the final matrix is byte-identical.
func TestShutdownInterruptsAndResumes(t *testing.T) {
	g := fleetGrid()
	g.Units = 4 // slow the cells enough for the drain to land mid-campaign
	want := singleProcessMatrix(t, g)
	spec := Spec{Name: "kill", Grid: g}
	dir := t.TempDir()

	s1, err := NewServer(Config{CheckpointDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c1, _, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first completed cell, then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for c1.status().CellsDone == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := testContext(30 * time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	st1 := c1.status()
	if st1.State != StateInterrupted && st1.State != StateDone {
		t.Fatalf("after shutdown campaign is %s (%s)", st1.State, st1.Error)
	}

	// The checkpoint on disk carries exactly the completed cells.
	data, err := os.ReadFile(filepath.Join(dir, c1.ID+".ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	ck, err := campaign.ParseCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Cells) != st1.CellsDone {
		t.Errorf("checkpoint has %d cells, status says %d done", len(ck.Cells), st1.CellsDone)
	}

	// Fresh process, same dir: resubmission resumes and finishes.
	s2 := newTestServer(t, Config{CheckpointDir: dir})
	c2 := submitAndWait(t, s2, spec)
	st2 := c2.status()
	if st2.CellsResumed != st1.CellsDone {
		t.Errorf("resumed %d cells, interrupted run had completed %d", st2.CellsResumed, st1.CellsDone)
	}
	if st1.State == StateInterrupted && st2.CellsResumed == 0 {
		t.Error("interrupted run left progress but resume skipped nothing")
	}
	c2.mu.Lock()
	got := c2.matrix
	c2.mu.Unlock()
	if !bytes.Equal(got, want) {
		t.Error("killed-and-resumed matrix differs from single-process bytes")
	}
}

// TestShardMergeEqualsSingleProcess is the multi-process contract at the
// service level, pinned at several worker counts: two shard servers'
// checkpoints merge into bytes identical to the unsharded run.
func TestShardMergeEqualsSingleProcess(t *testing.T) {
	g := fleetGrid()
	want := singleProcessMatrix(t, g)
	spec := Spec{Name: "sharded", Grid: g}

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var cks []*campaign.Checkpoint
			for idx := 0; idx < 2; idx++ {
				dir := t.TempDir()
				s := newTestServer(t, Config{
					CheckpointDir: dir,
					Shard:         Shard{Index: idx, Count: 2},
					Workers:       workers,
				})
				c := submitAndWait(t, s, spec)
				st := c.status()
				if st.ShardIndex != idx || st.ShardCount != 2 {
					t.Fatalf("status shard %d/%d, want %d/2", st.ShardIndex, st.ShardCount, idx)
				}
				data, err := os.ReadFile(filepath.Join(dir, c.ID+".ckpt.json"))
				if err != nil {
					t.Fatal(err)
				}
				ck, err := campaign.ParseCheckpoint(data)
				if err != nil {
					t.Fatal(err)
				}
				cks = append(cks, ck)
			}
			m, err := campaign.MergeCheckpoints(g, cks...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.MarshalCanonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Error("merged shard matrices differ from single-process bytes")
			}
		})
	}
}

// TestSubmitRejectsBadGridAndPoisonCheckpoint covers the refusal paths: an
// invalid grid 400s, and a checkpoint whose content does not validate
// refuses the submission instead of quietly discarding it.
func TestSubmitRejectsBadGridAndPoisonCheckpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	bad := fleetGrid()
	bad.Stimuli[0].Constellation = "NOPE"
	if _, _, err := s.Submit(Spec{Grid: bad}); err == nil {
		t.Error("invalid grid accepted")
	}

	// Poisoned checkpoint: right name, wrong grid hash.
	g := fleetGrid()
	spec := Spec{Name: "poison", Grid: g}
	probe := newTestServer(t, Config{})
	pc, _, err := probe.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	poison := []byte(`{"GridHash":"deadbeefdeadbeef","ShardIndex":0,"ShardCount":1,"Cells":[]}`)
	if err := os.WriteFile(filepath.Join(dir, pc.ID+".ckpt.json"), poison, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, Config{CheckpointDir: dir})
	if _, _, err := s2.Submit(spec); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Errorf("poisoned checkpoint accepted: %v", err)
	}
}

// TestAdmissionQueueBounded pins the 503 path: the admission queue is a
// fixed buffer, and overflow refuses rather than queues unboundedly.
func TestAdmissionQueueBounded(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 1})
	// Stall the executor with a real campaign, then overfill admission
	// with distinct specs (distinct names → distinct IDs).
	specs := make([]Spec, 3)
	for i := range specs {
		specs[i] = Spec{Name: fmt.Sprintf("q%d", i), Grid: fleetGrid()}
	}
	var sawFull bool
	for _, sp := range specs {
		if _, _, err := s.Submit(sp); err != nil {
			if err != errQueueFull {
				t.Fatalf("unexpected submit error: %v", err)
			}
			sawFull = true
		}
	}
	if !sawFull {
		t.Log("admission queue drained faster than the test submitted; bound not exercised")
	}
}
