package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/httpx"
	"repro/internal/testkit"
)

// Handler returns the fleet's HTTP surface on top of the standard
// observability mux (so /metrics and /debug/vars come for free, pprof when
// asked):
//
//	POST /campaigns                submit a Spec; 201 on admit, 200 if the
//	                               same content is already registered, 503
//	                               when the admission queue is full
//	GET  /campaigns                list campaign statuses
//	GET  /campaigns/{id}           one campaign's status
//	GET  /campaigns/{id}/stream    NDJSON event stream: full replay, then
//	                               live until the campaign ends
//	GET  /campaigns/{id}/matrix    canonical DetectionMatrix (409 until done)
//	GET  /campaigns/{id}/checkpoint  current checkpoint (canonical JSON)
//	GET  /campaigns/{id}/manifest  provenance manifest
//	GET  /campaigns/{id}/trace     Perfetto/Chrome trace (404 unless the
//	                               spec asked for one and the campaign ended)
//	GET  /campaigns/{id}/telemetry rolling-window SLO view (live while the
//	                               campaign runs, frozen at its end)
//	GET  /healthz                  readiness: ok/degraded 200, stalled or
//	                               draining 503, JSON body with causes
func (s *Server) Handler(withPprof bool) http.Handler {
	mux := httpx.ObsMux(withPprof)
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.withCampaign(s.handleStatus))
	mux.HandleFunc("GET /campaigns/{id}/stream", s.withCampaign(s.handleStream))
	mux.HandleFunc("GET /campaigns/{id}/matrix", s.withCampaign(s.handleMatrix))
	mux.HandleFunc("GET /campaigns/{id}/checkpoint", s.withCampaign(s.handleCheckpoint))
	mux.HandleFunc("GET /campaigns/{id}/manifest", s.withCampaign(s.handleManifest))
	mux.HandleFunc("GET /campaigns/{id}/trace", s.withCampaign(s.handleTrace))
	mux.HandleFunc("GET /campaigns/{id}/telemetry", s.withCampaign(s.handleTelemetry))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleHealthz serves the readiness report: ok and degraded are 200 (the
// fleet still takes work), stalled and draining are 503 (route campaigns
// elsewhere). The body is the machine-readable Health struct either way.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.State == HealthStalled || h.State == HealthDraining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// maxSpecBytes bounds a submission body; a campaign spec is small, and an
// unbounded read is a trivial memory DoS on a floor-facing service.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := ParseSpec(buf)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c, admitted, err := s.Submit(spec)
	switch {
	case errors.Is(err, errQueueFull):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	code := http.StatusOK
	if admitted {
		code = http.StatusCreated
	}
	writeJSON(w, code, c.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statuses())
}

// withCampaign resolves {id} and 404s unknown campaigns.
func (s *Server) withCampaign(h func(http.ResponseWriter, *http.Request, *Campaign)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.Campaign(r.PathValue("id"))
		if !ok {
			http.Error(w, "fleet: unknown campaign", http.StatusNotFound)
			return
		}
		h(w, r, c)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, c *Campaign) {
	writeJSON(w, http.StatusOK, c.status())
}

// handleStream replays the campaign's event history and follows it live as
// NDJSON, flushing per batch, until the campaign ends or the client goes
// away. A disconnected client is noticed via its request context, which
// wakes the event-log wait.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, c *Campaign) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx := r.Context()
	stop := context.AfterFunc(ctx, c.events.wake)
	defer stop()

	cursor := 0
	for ctx.Err() == nil {
		batch, next, ok := c.events.next(cursor)
		if !ok {
			return
		}
		cursor = next
		for _, line := range batch {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request, c *Campaign) {
	c.mu.Lock()
	state, matrix := c.state, c.matrix
	c.mu.Unlock()
	if state != StateDone || matrix == nil {
		http.Error(w, fmt.Sprintf("fleet: campaign is %s, matrix requires done", state), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(matrix)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, c *Campaign) {
	b, err := c.Checkpoint().MarshalCanonical()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request, c *Campaign) {
	writeCanonical(w, c.manifest)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request, c *Campaign) {
	c.mu.Lock()
	rec := c.traceRec
	c.mu.Unlock()
	if rec == nil {
		http.Error(w, "fleet: no trace recorded (submit with Trace:true and wait for the campaign to end)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := rec.WriteChrome(w); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

// Metrics returns the campaign's end-of-run obs snapshot (empty until the
// campaign ends). Exposed for the CLI and tests; the live registry is on
// /metrics.
func (c *Campaign) Metrics() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metricsSnap
}

// writeJSON encodes compact JSON responses (statuses, lists). Artifacts
// with byte-stability contracts (matrix, checkpoint, manifest) are written
// from their canonical bytes instead.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // headers already sent
}

func writeCanonical(w http.ResponseWriter, v any) {
	b, err := testkit.MarshalCanonical(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}
