package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// getStatus fetches a URL without asserting the status code (getOK fatals
// on non-200, which health probes legitimately return).
func getStatus(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// waitHealthState polls until the watchdog reports the wanted state or the
// deadline passes, returning the last report either way.
func waitHealthState(t *testing.T, s *Server, want string, timeout time.Duration) Health {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var h Health
	for time.Now().Before(deadline) {
		h = s.Health()
		if h.State == want {
			return h
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("health never reached %q; last report: %+v", want, h)
	return h
}

// TestWatchdogStallAndRecover pins the stall detector end to end: a job
// wedged on the single worker starves a running campaign, the watchdog
// flips /healthz to stalled (503) with the no_completion cause, and once
// the wedge releases the campaign finishes and health returns to ok.
func TestWatchdogStallAndRecover(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := s.StartWatchdog(WatchdogConfig{Interval: 5 * time.Millisecond, StallIntervals: 2})
	defer w.Close()

	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	// Idle fleet: healthy.
	waitHealthState(t, s, HealthOK, 2*time.Second)
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("idle /healthz = %d, want 200", code)
	}

	// Wedge the lone worker, then submit a campaign: its cells queue
	// behind the block and the completed-job count stops moving.
	block := make(chan struct{})
	if !s.queue.Submit(func() { <-block }) {
		t.Fatal("wedge job refused")
	}
	c, _, err := s.Submit(Spec{Name: "stalled", Grid: fleetGrid()})
	if err != nil {
		t.Fatal(err)
	}

	h := waitHealthState(t, s, HealthStalled, 5*time.Second)
	found := false
	for _, cause := range h.Causes {
		if cause == CauseNoCompletion {
			found = true
		}
	}
	if !found {
		t.Errorf("stalled causes = %v, want %s", h.Causes, CauseNoCompletion)
	}
	if h.RunningCampaign != c.ID {
		t.Errorf("stalled report names campaign %q, want %q", h.RunningCampaign, c.ID)
	}
	code, body := getStatus(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("stalled /healthz = %d, want 503", code)
	}
	var rep Health
	if err := json.Unmarshal(body, &rep); err != nil || rep.State != HealthStalled {
		t.Errorf("stalled /healthz body = %s (err %v)", body, err)
	}

	// Release: the campaign drains and health recovers.
	close(block)
	if st := c.WaitState(30 * time.Second); st.State != StateDone {
		t.Fatalf("campaign ended %s after release, want done", st.State)
	}
	waitHealthState(t, s, HealthOK, 5*time.Second)
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("recovered /healthz = %d, want 200", code)
	}
}

// TestHealthzDrainingDuringShutdown pins the drain contract: the moment
// Shutdown begins, /healthz serves 503 {"state":"draining"} — even while
// an in-flight campaign is still finishing.
func TestHealthzDrainingDuringShutdown(t *testing.T) {
	s, err := NewServer(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	// Hold the worker so a campaign is genuinely in flight during the
	// drain, then let Shutdown run concurrently.
	block := make(chan struct{})
	if !s.queue.Submit(func() { <-block }) {
		t.Fatal("wedge job refused")
	}
	if _, _, err := s.Submit(Spec{Name: "draining", Grid: fleetGrid()}); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := testContext(30 * time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// The draining flag flips before the drain waits, so this must be
	// visible promptly while the wedge still holds the campaign open.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := getStatus(t, ts.URL+"/healthz")
		if code == http.StatusServiceUnavailable {
			var rep Health
			if err := json.Unmarshal(body, &rep); err != nil || rep.State != HealthDraining {
				t.Errorf("draining /healthz body = %s (err %v)", body, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/healthz never reported draining during shutdown")
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(block)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Drained and stopped: still 503, still draining.
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown /healthz = %d, want 503", code)
	}
}

// TestWatchdogQueueSaturation pins the degraded path: a buffer that stays
// full (without a stalled campaign) is a warning, not an outage.
func TestWatchdogQueueSaturation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := s.StartWatchdog(WatchdogConfig{Interval: 5 * time.Millisecond, StallIntervals: 2})
	defer w.Close()

	// Wedge the worker and fill the buffer completely.
	block := make(chan struct{})
	defer close(block)
	if !s.queue.Submit(func() { <-block }) {
		t.Fatal("wedge job refused")
	}
	for i := 0; i < s.queue.Cap(); i++ {
		if !s.queue.Submit(func() {}) {
			t.Fatal("fill job refused")
		}
	}

	h := waitHealthState(t, s, HealthDegraded, 5*time.Second)
	found := false
	for _, cause := range h.Causes {
		if cause == CauseQueueSaturated {
			found = true
		}
	}
	if !found {
		t.Errorf("degraded causes = %v, want %s", h.Causes, CauseQueueSaturated)
	}
	// Degraded still serves traffic: 200 from the handler's point of view.
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("degraded /healthz = %d, want 200", code)
	}
}
