package tiadc

import (
	"math"
	"testing"

	"repro/internal/adc"
	"repro/internal/sig"
)

func TestDCDESetQuantizationAndBias(t *testing.T) {
	d := DCDE{Step: 1e-12, Min: 0, Max: 500e-12, Bias: 0.3e-12}
	got, err := d.Set(180.4e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-180.3e-12) > 1e-18 {
		t.Errorf("actual delay %g, want 180.3 ps", got)
	}
	if _, err := d.Set(600e-12); err == nil {
		t.Error("out-of-range delay must fail")
	}
	if _, err := d.Set(-1e-12); err == nil {
		t.Error("below range must fail")
	}
	// Continuous element: no quantization.
	c := DCDE{Min: 0, Max: 1e-9}
	if got, _ := c.Set(123.456e-12); got != 123.456e-12 {
		t.Errorf("continuous DCDE altered the delay: %g", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DCDE: DCDE{Min: 1, Max: 0}}); err == nil {
		t.Error("inverted DCDE range must fail")
	}
	if _, err := New(Config{ClockJitterRMS: -1}); err == nil {
		t.Error("negative jitter must fail")
	}
	if _, err := New(Config{Ch0: adc.Config{Bits: -3}}); err == nil {
		t.Error("bad channel 0 must fail")
	}
	if _, err := New(Config{Ch1: adc.Config{Bits: 99}}); err == nil {
		t.Error("bad channel 1 must fail")
	}
}

func TestCaptureIdealChannels(t *testing.T) {
	ti, err := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	tone := &sig.Tone{Amp: 1, Freq: 13e6}
	period := 1e-8
	d := 180e-12
	cap, err := ti.Capture(tone, period, d, 1e-7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cap.N() != 64 || cap.ActualD != d || cap.NominalD != d {
		t.Fatalf("capture metadata: %+v", cap)
	}
	t0s := cap.Times0()
	t1s := cap.Times1(d)
	for i := 0; i < cap.N(); i++ {
		if math.Abs(cap.Ch0[i]-tone.At(t0s[i])) > 1e-12 {
			t.Fatalf("ch0[%d] mismatch", i)
		}
		if math.Abs(cap.Ch1[i]-tone.At(t1s[i])) > 1e-12 {
			t.Fatalf("ch1[%d] mismatch", i)
		}
	}
}

func TestCaptureAppliesDCDEBias(t *testing.T) {
	bias := 2.5e-12
	ti, _ := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9, Bias: bias}})
	ramp := sig.SignalFunc(func(t float64) float64 { return t * 1e9 })
	cap, err := ti.Capture(ramp, 1e-8, 100e-12, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap.ActualD-(100e-12+bias)) > 1e-20 {
		t.Errorf("actual delay %g", cap.ActualD)
	}
	// Channel 1 samples the ramp later by the *actual* delay.
	for i := range cap.Ch1 {
		dt := (cap.Ch1[i] - cap.Ch0[i]) / 1e9
		if math.Abs(dt-cap.ActualD) > 1e-18 {
			t.Fatalf("sample %d: measured delay %g", i, dt)
		}
	}
}

func TestCaptureValidation(t *testing.T) {
	ti, _ := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9}})
	x := sig.Zero
	if _, err := ti.Capture(x, 0, 1e-10, 0, 4); err == nil {
		t.Error("zero period must fail")
	}
	if _, err := ti.Capture(x, 1e-8, 1e-10, 0, 0); err == nil {
		t.Error("zero length must fail")
	}
	if _, err := ti.Capture(x, 1e-8, 5e-9, 0, 4); err == nil {
		t.Error("delay outside DCDE must fail")
	}
}

func TestCaptureChannelMismatchVisible(t *testing.T) {
	ti, err := New(Config{
		Ch0:  adc.Config{Gain: 1.05, Offset: 0.01},
		Ch1:  adc.Config{Gain: 0.95, Offset: -0.01},
		DCDE: DCDE{Min: 0, Max: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc := sig.SignalFunc(func(float64) float64 { return 1 })
	cap, _ := ti.Capture(dc, 1e-8, 0, 0, 2)
	if math.Abs(cap.Ch0[0]-1.06) > 1e-12 || math.Abs(cap.Ch1[0]-0.94) > 1e-12 {
		t.Errorf("mismatch not applied: %g, %g", cap.Ch0[0], cap.Ch1[0])
	}
}

func TestCaptureClockJitterReproducible(t *testing.T) {
	mk := func(seed int64) *Capture {
		ti, _ := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9}, ClockJitterRMS: 3e-12, Seed: seed})
		cap, _ := ti.Capture(&sig.Tone{Amp: 1, Freq: 1e9}, 1.111e-8, 180e-12, 0, 32)
		return cap
	}
	a, b, c := mk(4), mk(4), mk(5)
	for i := range a.Ch0 {
		if a.Ch0[i] != b.Ch0[i] || a.Ch1[i] != b.Ch1[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	same := true
	for i := range a.Ch0 {
		if a.Ch0[i] != c.Ch0[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestChannelAccessor(t *testing.T) {
	ti, _ := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9}})
	if _, err := ti.Channel(0); err != nil {
		t.Error(err)
	}
	if _, err := ti.Channel(1); err != nil {
		t.Error(err)
	}
	if _, err := ti.Channel(2); err == nil {
		t.Error("channel 2 must fail")
	}
}

// streamTestConfig is a representative impaired two-channel setup for the
// streaming-capture determinism tests.
func streamTestConfig(chunk int) Config {
	return Config{
		Ch0: adc.Config{Bits: 10, FullScale: 1.5, JitterRMS: 3e-12,
			NoiseRMS: 1e-3, Seed: 11},
		Ch1: adc.Config{Bits: 10, FullScale: 1.5, Gain: 1.01, Offset: 2e-3,
			JitterRMS: 3e-12, NoiseRMS: 1e-3, Seed: 22},
		DCDE:           DCDE{Min: 0, Max: 1e-9, Bias: 0.4e-12},
		ClockJitterRMS: 3e-12,
		Seed:           7,
		StreamChunk:    chunk,
	}
}

func TestCaptureStreamChunkInvariance(t *testing.T) {
	tone := &sig.Tone{Amp: 1, Freq: 13e6}
	var ref *Capture
	for _, chunk := range []int{0, 1, 7, 64, 5000} {
		ti, err := New(streamTestConfig(chunk))
		if err != nil {
			t.Fatal(err)
		}
		c, err := ti.Capture(tone, 1e-8, 180e-12, 1e-7, 900)
		if err != nil {
			t.Fatal(err)
		}
		if c.Raw0 == nil || c.Raw1 == nil {
			t.Fatalf("chunk=%d: 10-bit capture must fill the int16 buffers", chunk)
		}
		if ref == nil {
			ref = c
			continue
		}
		for i := range c.Ch0 {
			if c.Ch0[i] != ref.Ch0[i] || c.Ch1[i] != ref.Ch1[i] {
				t.Fatalf("chunk=%d sample %d: floats differ from chunk=0 capture", chunk, i)
			}
			if c.Raw0[i] != ref.Raw0[i] || c.Raw1[i] != ref.Raw1[i] {
				t.Fatalf("chunk=%d sample %d: raw codes differ from chunk=0 capture", chunk, i)
			}
		}
	}
}

func TestCaptureRawDecodesToFloats(t *testing.T) {
	ti, err := New(streamTestConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	tone := &sig.Tone{Amp: 1, Freq: 13e6}
	c, err := ti.Capture(tone, 1e-8, 180e-12, 1e-7, 300)
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := ti.Channel(0)
	a1, _ := ti.Channel(1)
	for i := range c.Ch0 {
		if got := a0.DecodeInt16(c.Raw0[i]); got != c.Ch0[i] {
			t.Fatalf("ch0 sample %d: decoded %g != stored %g", i, got, c.Ch0[i])
		}
		if got := a1.DecodeInt16(c.Raw1[i]); got != c.Ch1[i] {
			t.Fatalf("ch1 sample %d: decoded %g != stored %g", i, got, c.Ch1[i])
		}
	}
}

func TestCaptureStreamMatchesDirectSampleOracle(t *testing.T) {
	// The streamed capture must be bit-identical to the serial reference:
	// clock times drawn up front, then each channel sampled and quantized in
	// one pass (the seed implementation this pipeline replaced).
	cfg := streamTestConfig(17)
	ti, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tone := &sig.Tone{Amp: 1, Freq: 13e6}
	period, d, t0 := 1e-8, 180e-12, 1e-7
	n := 400
	c, err := ti.Capture(tone, period, d, t0, n)
	if err != nil {
		t.Fatal(err)
	}
	// Reference path with fresh converters and clocks at the same seeds.
	a0, _ := adc.New(cfg.Ch0)
	a1, _ := adc.New(cfg.Ch1)
	seedBase := cfg.Seed + 1*7919 // first acquisition on a fresh TIADC
	c0, _ := adc.NewClock(period, t0, cfg.ClockJitterRMS, seedBase)
	c1, _ := adc.NewClock(period, t0+c.ActualD, cfg.ClockJitterRMS, seedBase+1)
	want0 := a0.Sample(tone, c0.Times(0, n))
	want1 := a1.Sample(tone, c1.Times(0, n))
	for i := range want0 {
		if c.Ch0[i] != want0[i] || c.Ch1[i] != want1[i] {
			t.Fatalf("sample %d: streamed capture differs from serial oracle", i)
		}
	}
}

func TestCaptureFloatFallbackWithoutQuantizer(t *testing.T) {
	// Ideal (unquantized) channels cannot use the int16 memory: Raw stays
	// nil and the float path must still be chunk-invariant.
	mk := func(chunk int) *Capture {
		ti, err := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9},
			ClockJitterRMS: 3e-12, Seed: 5, StreamChunk: chunk})
		if err != nil {
			t.Fatal(err)
		}
		c, err := ti.Capture(&sig.Tone{Amp: 1, Freq: 13e6}, 1e-8, 180e-12, 1e-7, 333)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := mk(3)
	b := mk(256)
	if a.Raw0 != nil || a.Raw1 != nil {
		t.Fatal("ideal channels must not allocate raw buffers")
	}
	for i := range a.Ch0 {
		if a.Ch0[i] != b.Ch0[i] || a.Ch1[i] != b.Ch1[i] {
			t.Fatalf("sample %d: float fallback not chunk-invariant", i)
		}
	}
}

// TestDCDEStuck: a frozen control word ignores the programmed setting and
// always realises StuckAt (plus bias) — range validation still applies to
// the nominal, and the stuck path bypasses quantization of the setting.
func TestDCDEStuck(t *testing.T) {
	d := DCDE{Step: 10e-12, Min: 0, Max: 480e-12, Bias: 3e-12, Stuck: true, StuckAt: 8e-12}
	for _, nominal := range []float64{0, 180e-12, 480e-12} {
		got, err := d.Set(nominal)
		if err != nil {
			t.Fatalf("Set(%g): %v", nominal, err)
		}
		if got != 11e-12 {
			t.Errorf("Set(%g) = %g, want stuck 11e-12", nominal, got)
		}
	}
	if _, err := d.Set(500e-12); err == nil {
		t.Error("out-of-range nominal must still error when stuck")
	}
	d.Stuck = false
	got, err := d.Set(180e-12)
	if err != nil {
		t.Fatal(err)
	}
	if got != 183e-12 {
		t.Errorf("unstuck Set = %g, want 183e-12", got)
	}
}
