package tiadc

import (
	"math"
	"testing"

	"repro/internal/adc"
	"repro/internal/sig"
)

func TestDCDESetQuantizationAndBias(t *testing.T) {
	d := DCDE{Step: 1e-12, Min: 0, Max: 500e-12, Bias: 0.3e-12}
	got, err := d.Set(180.4e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-180.3e-12) > 1e-18 {
		t.Errorf("actual delay %g, want 180.3 ps", got)
	}
	if _, err := d.Set(600e-12); err == nil {
		t.Error("out-of-range delay must fail")
	}
	if _, err := d.Set(-1e-12); err == nil {
		t.Error("below range must fail")
	}
	// Continuous element: no quantization.
	c := DCDE{Min: 0, Max: 1e-9}
	if got, _ := c.Set(123.456e-12); got != 123.456e-12 {
		t.Errorf("continuous DCDE altered the delay: %g", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DCDE: DCDE{Min: 1, Max: 0}}); err == nil {
		t.Error("inverted DCDE range must fail")
	}
	if _, err := New(Config{ClockJitterRMS: -1}); err == nil {
		t.Error("negative jitter must fail")
	}
	if _, err := New(Config{Ch0: adc.Config{Bits: -3}}); err == nil {
		t.Error("bad channel 0 must fail")
	}
	if _, err := New(Config{Ch1: adc.Config{Bits: 99}}); err == nil {
		t.Error("bad channel 1 must fail")
	}
}

func TestCaptureIdealChannels(t *testing.T) {
	ti, err := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	tone := &sig.Tone{Amp: 1, Freq: 13e6}
	period := 1e-8
	d := 180e-12
	cap, err := ti.Capture(tone, period, d, 1e-7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cap.N() != 64 || cap.ActualD != d || cap.NominalD != d {
		t.Fatalf("capture metadata: %+v", cap)
	}
	t0s := cap.Times0()
	t1s := cap.Times1(d)
	for i := 0; i < cap.N(); i++ {
		if math.Abs(cap.Ch0[i]-tone.At(t0s[i])) > 1e-12 {
			t.Fatalf("ch0[%d] mismatch", i)
		}
		if math.Abs(cap.Ch1[i]-tone.At(t1s[i])) > 1e-12 {
			t.Fatalf("ch1[%d] mismatch", i)
		}
	}
}

func TestCaptureAppliesDCDEBias(t *testing.T) {
	bias := 2.5e-12
	ti, _ := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9, Bias: bias}})
	ramp := sig.SignalFunc(func(t float64) float64 { return t * 1e9 })
	cap, err := ti.Capture(ramp, 1e-8, 100e-12, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap.ActualD-(100e-12+bias)) > 1e-20 {
		t.Errorf("actual delay %g", cap.ActualD)
	}
	// Channel 1 samples the ramp later by the *actual* delay.
	for i := range cap.Ch1 {
		dt := (cap.Ch1[i] - cap.Ch0[i]) / 1e9
		if math.Abs(dt-cap.ActualD) > 1e-18 {
			t.Fatalf("sample %d: measured delay %g", i, dt)
		}
	}
}

func TestCaptureValidation(t *testing.T) {
	ti, _ := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9}})
	x := sig.Zero
	if _, err := ti.Capture(x, 0, 1e-10, 0, 4); err == nil {
		t.Error("zero period must fail")
	}
	if _, err := ti.Capture(x, 1e-8, 1e-10, 0, 0); err == nil {
		t.Error("zero length must fail")
	}
	if _, err := ti.Capture(x, 1e-8, 5e-9, 0, 4); err == nil {
		t.Error("delay outside DCDE must fail")
	}
}

func TestCaptureChannelMismatchVisible(t *testing.T) {
	ti, err := New(Config{
		Ch0:  adc.Config{Gain: 1.05, Offset: 0.01},
		Ch1:  adc.Config{Gain: 0.95, Offset: -0.01},
		DCDE: DCDE{Min: 0, Max: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc := sig.SignalFunc(func(float64) float64 { return 1 })
	cap, _ := ti.Capture(dc, 1e-8, 0, 0, 2)
	if math.Abs(cap.Ch0[0]-1.06) > 1e-12 || math.Abs(cap.Ch1[0]-0.94) > 1e-12 {
		t.Errorf("mismatch not applied: %g, %g", cap.Ch0[0], cap.Ch1[0])
	}
}

func TestCaptureClockJitterReproducible(t *testing.T) {
	mk := func(seed int64) *Capture {
		ti, _ := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9}, ClockJitterRMS: 3e-12, Seed: seed})
		cap, _ := ti.Capture(&sig.Tone{Amp: 1, Freq: 1e9}, 1.111e-8, 180e-12, 0, 32)
		return cap
	}
	a, b, c := mk(4), mk(4), mk(5)
	for i := range a.Ch0 {
		if a.Ch0[i] != b.Ch0[i] || a.Ch1[i] != b.Ch1[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	same := true
	for i := range a.Ch0 {
		if a.Ch0[i] != c.Ch0[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestChannelAccessor(t *testing.T) {
	ti, _ := New(Config{DCDE: DCDE{Min: 0, Max: 1e-9}})
	if _, err := ti.Channel(0); err != nil {
		t.Error(err)
	}
	if _, err := ti.Channel(1); err != nil {
		t.Error(err)
	}
	if _, err := ti.Channel(2); err == nil {
		t.Error("channel 2 must fail")
	}
}
