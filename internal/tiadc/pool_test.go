package tiadc

import (
	"math"
	"testing"

	"repro/internal/adc"
	"repro/internal/sig"
)

// poolConfig exercises both buffer kinds: 10-bit converters take the int16
// capture-memory path (Raw0/Raw1 populated), so a capture draws from the
// float and the code pool.
func poolConfig() Config {
	ch := adc.Config{Bits: 10, FullScale: 1.5, NoiseRMS: 1e-4, Seed: 3}
	return Config{Ch0: ch, Ch1: ch, DCDE: DCDE{Min: 0, Max: 1e-9},
		ClockJitterRMS: 1e-12, Seed: 7}
}

// TestCapturePoolPoisonedBufferNoLeak pins the value-neutrality of buffer
// recycling: a released buffer is poisoned with NaN before it reenters the
// pool, and a fresh sampler's first capture — which will pick the poisoned
// buffers up — must still be bit-identical to a capture that never touched
// the pool. The capture pipeline writes every element it hands out, so no
// poison (i.e. no stale sample of a previous unit) can leak through.
func TestCapturePoolPoisonedBufferNoLeak(t *testing.T) {
	tone := &sig.Tone{Amp: 0.7, Freq: 13e6}
	run := func() *Capture {
		ti, err := New(poolConfig())
		if err != nil {
			t.Fatal(err)
		}
		c, err := ti.Capture(tone, 1e-8, 180e-12, 0, 257)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ref := run()
	want0 := append([]float64(nil), ref.Ch0...)
	want1 := append([]float64(nil), ref.Ch1...)
	wantR0 := append([]int16(nil), ref.Raw0...)
	if ref.Raw0 == nil || ref.Raw1 == nil {
		t.Fatal("test config must exercise the int16 capture path")
	}
	// Poison and release: the NaNs and sentinel codes are now in the pool.
	for i := range ref.Ch0 {
		ref.Ch0[i] = math.NaN()
		ref.Ch1[i] = math.NaN()
		ref.Raw0[i] = -32768
		ref.Raw1[i] = -32768
	}
	ref.Release()
	if ref.Ch0 != nil || ref.Raw0 != nil {
		t.Fatal("Release must clear the capture's fields")
	}
	got := run()
	for i := range want0 {
		if got.Ch0[i] != want0[i] || got.Ch1[i] != want1[i] {
			t.Fatalf("sample %d differs after pooled reuse: ch0 %g vs %g",
				i, got.Ch0[i], want0[i])
		}
		if got.Raw0[i] != wantR0[i] {
			t.Fatalf("raw code %d differs after pooled reuse", i)
		}
	}
	got.Release()
	// Release of an already-released (or nil) capture is a no-op.
	got.Release()
	var nilCap *Capture
	nilCap.Release()
}

// TestCaptureReleaseSteadyStateAllocs: once the pool is warm, a
// capture/release cycle must not allocate fresh channel buffers — the
// per-cycle allocation cost is a handful of fixed-size objects (capture
// struct, clock state, time grids), independent of how many cycles ran.
func TestCaptureReleaseSteadyStateAllocs(t *testing.T) {
	ti, err := New(poolConfig())
	if err != nil {
		t.Fatal(err)
	}
	tone := &sig.Tone{Amp: 0.7, Freq: 13e6}
	allocsAt := func(n int) float64 {
		cycle := func() {
			c, err := ti.Capture(tone, 1e-8, 180e-12, 0, n)
			if err != nil {
				t.Fatal(err)
			}
			c.Release()
		}
		cycle() // warm the pools at this size
		return testing.AllocsPerRun(20, cycle)
	}
	small, big := allocsAt(256), allocsAt(4096)
	// The per-cycle overhead is a fixed set of objects (capture struct,
	// clock state, time grids, pool headers); the channel buffers — the
	// only size-proportional part — come from the pool. Without pooling
	// the 4096-sample cycle would add four large buffers the 256-sample
	// one does not, so a widening gap flags a pool regression.
	if big > small+6 {
		t.Fatalf("allocs grew with capture size: %.0f at n=256 vs %.0f at n=4096; channel buffers are no longer pooled", small, big)
	}
}
