// Package tiadc implements the nonuniform bandpass time-interleaved ADC
// (BP-TIADC) of paper Fig. 4: two converter channels sharing a clock
// generator, with the second channel triggered after a Digitally Controlled
// Delay Element (DCDE). Channel mismatches (gain, offset, jitter) live in
// the per-channel ADC models; the DCDE contributes delay quantization and an
// unknown static bias, which is exactly the quantity the paper's LMS
// technique must estimate.
package tiadc

import (
	"fmt"
	"sync"

	"repro/internal/adc"
	"repro/internal/par"
	"repro/internal/sig"
)

// The acquisition buffer pools recycle per-channel sample and code buffers
// across captures: a fault-matrix campaign acquires two captures per unit
// across thousands of (stimulus, fault, unit) cells, and the ~KB-to-MB
// channel buffers dominated its steady-state allocation rate. Buffers are
// handed back via Capture.Release once nothing aliases them; a pooled
// buffer is fully overwritten by the next capture (every index in
// [0, n) is written by the pipeline), so reuse cannot leak one capture's
// samples into the next — the poisoned-pool test pins that.
var (
	valsPool sync.Pool // *[]float64
	rawPool  sync.Pool // *[]int16
)

func getVals(n int) []float64 {
	if p, _ := valsPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func getRaw(n int) []int16 {
	if p, _ := rawPool.Get().(*[]int16); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int16, n)
}

// DCDE is a digitally controlled delay element with a settable range,
// a step (delay DAC resolution) and a static bias representing the analog
// mismatch that makes the true delay unknown a priori.
type DCDE struct {
	// Step is the delay resolution in seconds (0 = continuously variable).
	Step float64
	// Min and Max bound the programmable delay range.
	Min, Max float64
	// Bias is an unknown static error added to the programmed delay; the
	// BIST estimates the actual delay rather than trusting the setting.
	Bias float64
	// Stuck, when true, models a control word frozen at a fixed code: the
	// element ignores the programmed setting and realises StuckAt (plus
	// Bias) for every nominal delay. Unlike Bias — which the LMS absorbs —
	// a code stuck near a degenerate delay (e.g. ~0, where the two
	// channels sample almost coincidentally) destroys the reconstruction
	// conditioning and must be caught by the BIST.
	Stuck bool
	// StuckAt is the delay the frozen code realises (only read when Stuck
	// is set; may be 0).
	StuckAt float64
}

// Set programs a nominal delay and returns the actual delay realised by the
// element (quantized setting plus bias).
func (d *DCDE) Set(nominal float64) (float64, error) {
	if nominal < d.Min || nominal > d.Max {
		return 0, fmt.Errorf("tiadc: delay %g s outside DCDE range [%g, %g]", nominal, d.Min, d.Max)
	}
	if d.Stuck {
		return d.StuckAt + d.Bias, nil
	}
	setting := nominal
	if d.Step > 0 {
		steps := int(nominal/d.Step + 0.5)
		setting = float64(steps) * d.Step
	}
	return setting + d.Bias, nil
}

// Config assembles a two-channel nonuniform sampler.
type Config struct {
	// Ch0 and Ch1 configure the two converter channels.
	Ch0, Ch1 adc.Config
	// DCDE is the delay element inserted in channel 1's clock path.
	DCDE DCDE
	// ClockJitterRMS is additional jitter of the shared clock generator in
	// seconds rms (applied to both channels independently per edge, the
	// paper's 3 ps rms "time-skew jitter").
	ClockJitterRMS float64
	// Seed drives the shared clock jitter stream.
	Seed int64
	// StreamChunk is the acquisition pipeline chunk size in samples
	// (0 = 256): the analog front end (stage 1, which owns the jitter and
	// noise random streams and therefore runs serially) overlaps with
	// quantization and int16 packing (stage 2) on chunk boundaries.
	// Captured values are bit-identical at every chunk size.
	StreamChunk int
}

// TIADC is the assembled sampler.
type TIADC struct {
	cfg Config
	a0  *adc.ADC
	a1  *adc.ADC
	// captures counts acquisitions so each capture draws fresh
	// (deterministic but independent) clock-jitter streams — successive
	// acquisitions in hardware see independent edge jitter.
	captures int64
}

// New validates the configuration and builds the sampler.
func New(cfg Config) (*TIADC, error) {
	if cfg.DCDE.Max < cfg.DCDE.Min {
		return nil, fmt.Errorf("tiadc: DCDE range inverted [%g, %g]", cfg.DCDE.Min, cfg.DCDE.Max)
	}
	if cfg.ClockJitterRMS < 0 {
		return nil, fmt.Errorf("tiadc: negative clock jitter")
	}
	if cfg.StreamChunk < 0 {
		return nil, fmt.Errorf("tiadc: negative stream chunk %d", cfg.StreamChunk)
	}
	a0, err := adc.New(cfg.Ch0)
	if err != nil {
		return nil, fmt.Errorf("tiadc: channel 0: %w", err)
	}
	a1, err := adc.New(cfg.Ch1)
	if err != nil {
		return nil, fmt.Errorf("tiadc: channel 1: %w", err)
	}
	return &TIADC{cfg: cfg, a0: a0, a1: a1}, nil
}

// Capture is one nonuniform acquisition: channel 0 sampled at
// t0 + n T and channel 1 at t0 + n T + D, n = 0..N-1.
type Capture struct {
	// T is the per-channel sample period (1/B).
	T float64
	// NominalD is the delay programmed into the DCDE.
	NominalD float64
	// ActualD is the ground-truth realised delay (setting + bias). It is
	// recorded for experiment scoring only — estimators must not read it.
	ActualD float64
	// T0 is the nominal instant of channel 0's first sample.
	T0 float64
	// Ch0 and Ch1 hold the captured (quantized) sample values.
	Ch0, Ch1 []float64
	// Raw0 and Raw1 hold the packed fixed-point codes (twice the mid-rise
	// code, an odd integer — see adc.EncodeInt16) when the corresponding
	// converter is Int16Capable, mirroring the hardware's 10-bit capture
	// memory; Ch0/Ch1 are then exactly the decoded codes. A nil slice means
	// that channel needed the float path (ideal, >15-bit, or static-NL
	// converters).
	Raw0, Raw1 []int16
}

// N returns the per-channel sample count.
func (c *Capture) N() int { return len(c.Ch0) }

// Release hands the capture's channel buffers back to the shared
// acquisition pools and clears the fields. Call it only once nothing
// aliases the slices anymore (sample sets, reconstructors and evaluators
// built from this capture must all be dead); after Release the capture
// reads as empty. Releasing is optional — an unreleased capture is simply
// garbage collected.
func (c *Capture) Release() {
	if c == nil {
		return
	}
	for _, ch := range []*[]float64{&c.Ch0, &c.Ch1} {
		if *ch != nil {
			buf := *ch
			valsPool.Put(&buf)
			*ch = nil
		}
	}
	for _, rw := range []*[]int16{&c.Raw0, &c.Raw1} {
		if *rw != nil {
			buf := *rw
			rawPool.Put(&buf)
			*rw = nil
		}
	}
}

// Times0 returns the nominal channel-0 sampling instants.
func (c *Capture) Times0() []float64 { return sig.UniformTimes(c.T0, c.T, len(c.Ch0)) }

// Times1 returns the nominal channel-1 instants assuming delay d (pass an
// estimate; the true instants used ActualD).
func (c *Capture) Times1(d float64) []float64 {
	return sig.UniformTimes(c.T0+d, c.T, len(c.Ch1))
}

// Capture acquires n sample pairs of signal x at per-channel rate 1/period,
// with the DCDE programmed to nominalD and channel 0 starting at t0.
func (ti *TIADC) Capture(x sig.Signal, period, nominalD, t0 float64, n int) (*Capture, error) {
	if period <= 0 {
		return nil, fmt.Errorf("tiadc: period %g must be positive", period)
	}
	if n <= 0 {
		return nil, fmt.Errorf("tiadc: capture length %d must be positive", n)
	}
	actualD, err := ti.cfg.DCDE.Set(nominalD)
	if err != nil {
		return nil, err
	}
	ti.captures++
	seedBase := ti.cfg.Seed + ti.captures*7919 // fresh jitter per acquisition
	c0, err := adc.NewClock(period, t0, ti.cfg.ClockJitterRMS, seedBase)
	if err != nil {
		return nil, err
	}
	c1, err := adc.NewClock(period, t0+actualD, ti.cfg.ClockJitterRMS, seedBase+1)
	if err != nil {
		return nil, err
	}
	t0s := c0.Times(0, n)
	t1s := c1.Times(0, n)
	ch0, raw0 := captureChannel(ti.a0, x, t0s, ti.cfg.StreamChunk)
	ch1, raw1 := captureChannel(ti.a1, x, t1s, ti.cfg.StreamChunk)
	return &Capture{
		T:        period,
		NominalD: nominalD,
		ActualD:  actualD,
		T0:       t0,
		Ch0:      ch0,
		Ch1:      ch1,
		Raw0:     raw0,
		Raw1:     raw1,
	}, nil
}

// captureChannel drives one converter through the bounded two-stage
// acquisition pipeline: the producer runs the analog front end serially in
// index order (it owns the converter's jitter and noise random streams),
// and the consumer digitizes each completed chunk — through the packed
// int16 capture memory when the converter supports it — while the producer
// holds the next one. Both stages observe the exact serial order, so the
// result is bit-identical to sampling then quantizing the whole capture at
// once, at every chunk size and pipeline depth (the streaming tests and the
// unchanged goldens pin this).
func captureChannel(a *adc.ADC, x sig.Signal, times []float64, chunk int) (vals []float64, raw []int16) {
	n := len(times)
	vals = getVals(n)
	if a.Int16Capable() {
		raw = getRaw(n)
	}
	par.Stream(n, chunk, 0,
		func(lo, hi int) {
			a.Analog(x, times[lo:hi], vals[lo:hi])
		},
		func(lo, hi int) {
			if raw != nil {
				for i := lo; i < hi; i++ {
					c := a.EncodeInt16(vals[i])
					raw[i] = c
					vals[i] = a.DecodeInt16(c)
				}
				return
			}
			for i := lo; i < hi; i++ {
				vals[i] = a.Quantize(vals[i])
			}
		})
	return vals, raw
}

// Channel returns the underlying converter models (0 or 1) for inspection.
func (ti *TIADC) Channel(i int) (*adc.ADC, error) {
	switch i {
	case 0:
		return ti.a0, nil
	case 1:
		return ti.a1, nil
	default:
		return nil, fmt.Errorf("tiadc: channel %d out of range", i)
	}
}
