package tiadc

import (
	"math"
	"testing"

	"repro/internal/adc"
	"repro/internal/sig"
)

// mismatchCapture acquires a multitone bandpass signal through channels
// with known gain/offset errors.
func mismatchCapture(t *testing.T, g0, o0, g1, o1 float64, n int) *Capture {
	t.Helper()
	ti, err := New(Config{
		Ch0:  adc.Config{Gain: g0, Offset: o0},
		Ch1:  adc.Config{Gain: g1, Offset: o1},
		DCDE: DCDE{Min: 0, Max: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := sig.Sum{
		&sig.Tone{Amp: 0.7, Freq: 972e6, Phase: 0.3},
		&sig.Tone{Amp: 0.5, Freq: 1.01e9, Phase: 1.1},
	}
	cap0, err := ti.Capture(x, 1/90e6, 180e-12, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	return cap0
}

func TestEstimateMismatchRecoversInjectedErrors(t *testing.T) {
	g1 := 0.93
	cap0 := mismatchCapture(t, 1.0, 0.02, g1, -0.015, 4096)
	m, err := EstimateMismatch(cap0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Offset0-0.02) > 2e-3 {
		t.Errorf("offset0 %g, want 0.02", m.Offset0)
	}
	if math.Abs(m.Offset1-(-0.015)) > 2e-3 {
		t.Errorf("offset1 %g, want -0.015", m.Offset1)
	}
	if math.Abs(m.Gain1Over0-g1) > 0.01 {
		t.Errorf("gain ratio %g, want %g", m.Gain1Over0, g1)
	}
	if math.Abs(m.GainErrorDB()-20*math.Log10(g1)) > 0.1 {
		t.Errorf("gain error %g dB", m.GainErrorDB())
	}
}

func TestCorrectedRemovesMismatch(t *testing.T) {
	cap0 := mismatchCapture(t, 1.0, 0.05, 0.9, -0.03, 4096)
	m, err := EstimateMismatch(cap0)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m.Corrected(cap0)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the same acquisition through ideal channels.
	ref := mismatchCapture(t, 1.0, 0, 1.0, 0, 4096)
	var worst float64
	for i := range fixed.Ch0 {
		if d := math.Abs(fixed.Ch0[i] - ref.Ch0[i]); d > worst {
			worst = d
		}
		if d := math.Abs(fixed.Ch1[i] - ref.Ch1[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.01 {
		t.Errorf("residual mismatch %g after correction", worst)
	}
	// Metadata preserved.
	if fixed.ActualD != cap0.ActualD || fixed.T != cap0.T || fixed.T0 != cap0.T0 {
		t.Error("capture metadata lost")
	}
}

func TestMismatchValidation(t *testing.T) {
	if _, err := EstimateMismatch(nil); err == nil {
		t.Error("nil capture must fail")
	}
	tiny := &Capture{Ch0: make([]float64, 4), Ch1: make([]float64, 4)}
	if _, err := EstimateMismatch(tiny); err == nil {
		t.Error("short capture must fail")
	}
	flat := &Capture{Ch0: make([]float64, 32), Ch1: make([]float64, 32)}
	if _, err := EstimateMismatch(flat); err == nil {
		t.Error("DC-only capture must fail")
	}
	var m Mismatch // zero gain ratio
	if _, err := m.Corrected(&Capture{}); err == nil {
		t.Error("zero gain ratio must fail")
	}
	if _, err := (Mismatch{Gain1Over0: 1}).Corrected(nil); err == nil {
		t.Error("nil capture must fail")
	}
	if !math.IsInf(m.GainErrorDB(), 1) {
		t.Error("zero ratio dB convention")
	}
}
