package tiadc

import (
	"fmt"
	"math"
)

// Mismatch holds the estimated inter-channel gain/offset mismatch of a
// capture. The paper (Section III) notes that "the offset and the gain
// error calibrations are relatively simple to implement [16]"; this file
// implements the background estimation in the style of Fu, Dyer, Lewis &
// Hurst (JSSC 1998): both channels observe the same wide-sense-stationary
// signal, so their sample means estimate the offsets and their RMS ratio
// estimates the gain mismatch — no test signal needed.
type Mismatch struct {
	// Offset0 and Offset1 are the per-channel DC offsets (volts).
	Offset0, Offset1 float64
	// Gain1Over0 is the channel-1/channel-0 gain ratio.
	Gain1Over0 float64
}

// EstimateMismatch measures the mismatch from a capture. A bandpass signal
// carries no DC, so the channel means are pure offset; the AC RMS ratio is
// the gain ratio. The estimate improves as 1/sqrt(N).
func EstimateMismatch(c *Capture) (Mismatch, error) {
	if c == nil || c.N() < 16 {
		return Mismatch{}, fmt.Errorf("tiadc: mismatch estimation needs >= 16 sample pairs")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	rmsAC := func(xs []float64, m float64) float64 {
		s := 0.0
		for _, v := range xs {
			d := v - m
			s += d * d
		}
		return math.Sqrt(s / float64(len(xs)))
	}
	m0 := mean(c.Ch0)
	m1 := mean(c.Ch1)
	r0 := rmsAC(c.Ch0, m0)
	r1 := rmsAC(c.Ch1, m1)
	if r0 == 0 {
		return Mismatch{}, fmt.Errorf("tiadc: channel 0 has no AC content")
	}
	return Mismatch{Offset0: m0, Offset1: m1, Gain1Over0: r1 / r0}, nil
}

// Corrected returns a copy of the capture with the mismatch removed:
// channel 0 is the reference; channel 1 is offset-corrected and re-scaled
// to channel 0's gain.
func (m Mismatch) Corrected(c *Capture) (*Capture, error) {
	if c == nil {
		return nil, fmt.Errorf("tiadc: nil capture")
	}
	if m.Gain1Over0 == 0 {
		return nil, fmt.Errorf("tiadc: zero gain ratio")
	}
	out := &Capture{
		T:        c.T,
		NominalD: c.NominalD,
		ActualD:  c.ActualD,
		T0:       c.T0,
		Ch0:      getVals(len(c.Ch0)),
		Ch1:      getVals(len(c.Ch1)),
	}
	for i, v := range c.Ch0 {
		out.Ch0[i] = v - m.Offset0
	}
	for i, v := range c.Ch1 {
		out.Ch1[i] = (v - m.Offset1) / m.Gain1Over0
	}
	return out, nil
}

// GainErrorDB reports the gain mismatch in dB.
func (m Mismatch) GainErrorDB() float64 {
	if m.Gain1Over0 <= 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(m.Gain1Over0)
}
