package tiadc_test

import (
	"fmt"
	"math"

	"repro/internal/adc"
	"repro/internal/sig"
	"repro/internal/tiadc"
)

// The BP-TIADC of paper Fig. 4: two 10-bit channels, a DCDE programmed to
// 180 ps with an unknown bias — the quantity the LMS later estimates.
func ExampleTIADC_Capture() {
	ti, err := tiadc.New(tiadc.Config{
		Ch0:  adc.Config{Bits: 10, FullScale: 1.5, Seed: 1},
		Ch1:  adc.Config{Bits: 10, FullScale: 1.5, Seed: 2},
		DCDE: tiadc.DCDE{Min: 0, Max: 480e-12, Step: 1e-12, Bias: 2.3e-12},
	})
	if err != nil {
		panic(err)
	}
	tone := &sig.Tone{Amp: 1, Freq: 1e9}
	cap0, err := ti.Capture(tone, 1/90e6, 180e-12, 0, 256)
	if err != nil {
		panic(err)
	}
	fmt.Printf("programmed %.0f ps, realised %.1f ps, %d sample pairs\n",
		cap0.NominalD*1e12, cap0.ActualD*1e12, cap0.N())
	// Output: programmed 180 ps, realised 182.3 ps, 256 sample pairs
}

// Background calibration removes channel gain/offset mismatch without any
// test signal (paper Section III / reference [16]).
func ExampleEstimateMismatch() {
	ti, _ := tiadc.New(tiadc.Config{
		Ch0:  adc.Config{Gain: 1.05, Offset: 0.01},
		Ch1:  adc.Config{Gain: 0.95, Offset: -0.01},
		DCDE: tiadc.DCDE{Min: 0, Max: 1e-9},
	})
	x := &sig.Tone{Amp: 0.8, Freq: 987e6}
	cap0, _ := ti.Capture(x, 1/90e6, 180e-12, 0, 4096)
	m, err := tiadc.EstimateMismatch(cap0)
	if err != nil {
		panic(err)
	}
	ratioOK := math.Abs(m.Gain1Over0-0.95/1.05) < 0.01
	fmt.Println("gain ratio recovered:", ratioOK)
	// Output: gain ratio recovered: true
}
