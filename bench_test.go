// Package repro's root benchmark suite regenerates every table and figure
// of the paper (one Benchmark per artifact — see DESIGN.md's experiment
// index) and additionally benchmarks the computational kernels the paper
// calls out: the Kohlenberg interpolation, the dual-rate cost function and
// the LMS identification ("relatively high computational effort",
// Section IV-B).
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"io"
	"math"
	"testing"

	"repro/internal/campaign"
	"repro/internal/dsp"
	"repro/internal/experiments"
	"repro/internal/modem"
	"repro/internal/obs/trace"
	"repro/internal/par"
	"repro/internal/pnbs"
	"repro/internal/skew"
)

// --- paper artifacts --------------------------------------------------

func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig3a(3, 61)
		r.Render(io.Discard)
	}
}

func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3b()
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFig5(b *testing.B) {
	s := experiments.DefaultPaperSetup()
	s.NTimes = 120
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig5(s, 0, 0, 29, 0)
		if err != nil {
			b.Fatal(err)
		}
		if math.Abs(r.ArgMin-r.DTrue) > 8e-12 {
			b.Fatalf("Fig. 5 minimum off: %g vs %g", r.ArgMin, r.DTrue)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFig6(b *testing.B) {
	s := experiments.DefaultPaperSetup()
	s.NTimes = 120
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig6(s, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range r.Traces {
			if tr.Result.Iterations >= 25 {
				b.Fatalf("LMS did not converge fast enough from %g", tr.D0)
			}
		}
		r.Render(io.Discard)
	}
}

func BenchmarkTable1(b *testing.B) {
	s := experiments.DefaultPaperSetup()
	s.NTimes = 120
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(s, 0)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkEq4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunEq4(nil)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkDSweep(b *testing.B) {
	band := experiments.DefaultPaperSetup().BandB
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunDSweep(band, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkMaskBIST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMaskBIST(0.35)
		if err != nil {
			b.Fatal(err)
		}
		if r.Escapes != 0 || r.Alarms != 0 {
			b.Fatalf("detection matrix wrong: %d escapes, %d alarms", r.Escapes, r.Alarms)
		}
		r.Render(io.Discard)
	}
}

// BenchmarkMaskBISTTraceOff/On measure the cost of the hierarchical trace
// layer on the end-to-end mask BIST: Off is the ambient state (every span
// site reduced to one inlined atomic load), On records the full span tree
// and counter streams into the in-memory buffers. The pair is recorded in
// BENCH_trace.json by `make bench-hot`.
func BenchmarkMaskBISTTraceOff(b *testing.B) {
	if trace.Enabled() {
		b.Fatal("a trace recording is active")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMaskBIST(0.35); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskBISTTraceOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := trace.StartRecording(trace.Config{}); err != nil {
			b.Fatal(err)
		}
		_, err := experiments.RunMaskBIST(0.35)
		rec := trace.StopRecording()
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Spans) == 0 {
			b.Fatal("recording captured nothing")
		}
	}
}

func BenchmarkFlexibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFlex(0.35)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// --- computational kernels ---------------------------------------------

func paperKernel(b *testing.B) *pnbs.Kernel {
	b.Helper()
	k, err := pnbs.NewKernel(pnbs.Band{FLow: 955e6, B: 90e6}, 180e-12)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

func BenchmarkKernelS(b *testing.B) {
	k := paperKernel(b)
	t := 3.7e-9
	var acc float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += k.S(t)
	}
	_ = acc
}

func benchRecon(b *testing.B, halfTaps int) {
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	tt := band.T()
	n := 512
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = math.Cos(2 * math.Pi * 1e9 * float64(i) * tt)
		ch1[i] = math.Cos(2 * math.Pi * 1e9 * (float64(i)*tt + d))
	}
	r, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, pnbs.Options{HalfTaps: halfTaps})
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := r.ValidRange()
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += r.At(lo + math.Mod(float64(i)*1.7e-9, hi-lo))
	}
	_ = acc
}

func BenchmarkReconstructorAt61Taps(b *testing.B)  { benchRecon(b, 30) }
func BenchmarkReconstructorAt121Taps(b *testing.B) { benchRecon(b, 60) }

// benchReconBlock measures the blocked batch path over a sorted instant
// block (ns/op is per instant, directly comparable to benchRecon): the
// delay-independent tables are prepared once and reused across candidate
// delays, which is the LMS hot-loop shape.
func benchReconBlock(b *testing.B, halfTaps int) {
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	tt := band.T()
	n := 512
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = math.Cos(2 * math.Pi * 1e9 * float64(i) * tt)
		ch1[i] = math.Cos(2 * math.Pi * 1e9 * (float64(i)*tt + d))
	}
	r, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, pnbs.Options{HalfTaps: halfTaps})
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := r.ValidRange()
	const nt = 300
	ts := make([]float64, nt)
	for i := range ts {
		ts[i] = lo + float64(i)/(nt-1)*(hi-lo)
	}
	dst := make([]float64, nt)
	r.AtBlock(ts, dst) // build the per-instant tables outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += nt {
		r.AtBlock(ts, dst)
	}
}

func BenchmarkAtBlock61Taps(b *testing.B)  { benchReconBlock(b, 30) }
func BenchmarkAtBlock121Taps(b *testing.B) { benchReconBlock(b, 60) }

// BenchmarkEnvelopeGrid measures the measure stage's fused per-phase grid
// path (ns/op per grid point at 8x oversampling).
func BenchmarkEnvelopeGrid(b *testing.B) {
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	tt := band.T()
	n := 4096
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = math.Cos(2 * math.Pi * 1e9 * float64(i) * tt)
		ch1[i] = math.Cos(2 * math.Pi * 1e9 * (float64(i)*tt + d))
	}
	r, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, pnbs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lo, _ := r.ValidRange()
	const np = 2048
	out := make([]complex128, np)
	fs := band.B * 8
	r.EnvelopeGridInto(1e9, lo, fs, out) // warm the per-phase tables
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += np {
		r.EnvelopeGridInto(1e9, lo, fs, out)
	}
}

func BenchmarkCostEvaluation(b *testing.B) {
	bandB := pnbs.Band{FLow: 955e6, B: 90e6}
	bandB1 := skew.HalfRateBand(bandB)
	d := 180e-12
	mk := func(band pnbs.Band, t0 float64, n int) skew.SampleSet {
		tt := band.T()
		ch0 := make([]float64, n)
		ch1 := make([]float64, n)
		for i := 0; i < n; i++ {
			ch0[i] = math.Cos(2 * math.Pi * 1.003e9 * (t0 + float64(i)*tt))
			ch1[i] = math.Cos(2 * math.Pi * 1.003e9 * (t0 + float64(i)*tt + d))
		}
		return skew.SampleSet{Band: band, T0: t0, Ch0: ch0, Ch1: ch1}
	}
	setB := mk(bandB, 0, 300)
	setB1 := mk(bandB1, -400e-9, 180)
	times := skew.RandomTimes(500e-9, 1600e-9, 300, 1)
	ce, err := skew.NewCostEvaluator(setB, setB1, times, pnbs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ce.Cost(180e-12 + float64(i%7)*1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostBatch measures the multi-candidate batched evaluation (the
// CostCurve / bracket-scan shape): ns/op is for the whole 16-candidate
// batch, directly comparable to 16x BenchmarkCostEvaluation's ns/op. The
// batch shares the delay-independent fused tables across candidates.
func BenchmarkCostBatch(b *testing.B) {
	bandB := pnbs.Band{FLow: 955e6, B: 90e6}
	bandB1 := skew.HalfRateBand(bandB)
	d := 180e-12
	mk := func(band pnbs.Band, t0 float64, n int) skew.SampleSet {
		tt := band.T()
		ch0 := make([]float64, n)
		ch1 := make([]float64, n)
		for i := 0; i < n; i++ {
			ch0[i] = math.Cos(2 * math.Pi * 1.003e9 * (t0 + float64(i)*tt))
			ch1[i] = math.Cos(2 * math.Pi * 1.003e9 * (t0 + float64(i)*tt + d))
		}
		return skew.SampleSet{Band: band, T0: t0, Ch0: ch0, Ch1: ch1}
	}
	setB := mk(bandB, 0, 300)
	setB1 := mk(bandB1, -400e-9, 180)
	times := skew.RandomTimes(500e-9, 1600e-9, 300, 1)
	ce, err := skew.NewCostEvaluator(setB, setB1, times, pnbs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dHats := make([]float64, 16)
	for i := range dHats {
		dHats[i] = 100e-12 + float64(i)*12e-12
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ce.CostBatch(dHats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignGrid measures the stimulus-coverage campaign per cell
// (2 stimuli x 4 rows x 1 unit = 8 full BIST executions per op) with the
// memoized stimulus payloads and pooled capture/grid buffers warm — the
// per-unit cost a million-DUT campaign pays at steady state.
func BenchmarkCampaignGrid(b *testing.B) {
	g := campaign.Grid{
		Stimuli: []campaign.StimulusSpec{
			{Name: "qpsk-hot", Constellation: "QPSK", PRBSOrder: 15, PRBSSeed: 0x2A5B,
				BurstLen: 128, BackoffDB: -3, Mask: "wideband-qpsk-15M"},
			{Name: "qam16-cold", Constellation: "16QAM", PRBSOrder: 23, PRBSSeed: 0x7FFF1,
				BurstLen: 128, BackoffDB: 6, Mask: "wideband-qpsk-15M"},
		},
		Faults:         []string{"pa-compression", "lo-spur-comb", "dcde-stuck"},
		Units:          1,
		Seed:           1701,
		Scale:          0.1,
		YieldThreshold: 0.5,
	}
	if _, err := g.Run(); err != nil { // warm memo + pools outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := g.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Cells) != 8 {
			b.Fatalf("unexpected matrix shape: %d cells", len(m.Cells))
		}
	}
}

// BenchmarkReconstructorRetune measures the in-place candidate-delay swap
// the LMS hot loop relies on (vs the full NewReconstructor rebuild the
// seed paid per candidate).
func BenchmarkReconstructorRetune(b *testing.B) {
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	tt := band.T()
	n := 256
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = math.Cos(2 * math.Pi * 1e9 * float64(i) * tt)
		ch1[i] = math.Cos(2 * math.Pi * 1e9 * (float64(i)*tt + 180e-12))
	}
	r, err := pnbs.NewReconstructor(band, 180e-12, 0, ch0, ch1, pnbs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ds := []float64{120e-12, 180e-12, 240e-12, 300e-12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Retune(ds[i%len(ds)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostEvaluationWorkers4 drives the cost function with an
// explicit 4-worker pool (on a single-core host this measures the fan-out
// overhead; on a multi-core host, the speedup).
func BenchmarkCostEvaluationWorkers4(b *testing.B) {
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	BenchmarkCostEvaluation(b)
}

func BenchmarkFFT4096(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(math.Sin(0.1*float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dsp.FFT(x)
	}
}

// benchFFTPlan measures steady-state Execute on a cached plan: the
// transform itself, with twiddle/permutation construction amortized away.
func benchFFTPlan(b *testing.B, n int) {
	p := dsp.PlanFFT(n)
	src := make([]complex128, n)
	for i := range src {
		src[i] = complex(math.Sin(0.1*float64(i)), math.Cos(0.17*float64(i)))
	}
	buf := make([]complex128, n)
	p.ExecuteInto(buf, src) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ExecuteInto(buf, src)
	}
}

func BenchmarkFFTPlan1024(b *testing.B)    { benchFFTPlan(b, 1024) }
func BenchmarkFFTPlan4096(b *testing.B)    { benchFFTPlan(b, 4096) }
func BenchmarkFFTPlanOdd1000(b *testing.B) { benchFFTPlan(b, 1000) }

func BenchmarkWelch64k(b *testing.B) {
	x := make([]complex128, 1<<16)
	for i := range x {
		x[i] = complex(math.Sin(0.01*float64(i)), math.Cos(0.013*float64(i)))
	}
	cfg := dsp.DefaultWelch(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.WelchComplex(x, 1e6, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelchPSD(b *testing.B) {
	x := make([]complex128, 1<<14)
	for i := range x {
		x[i] = complex(math.Sin(0.01*float64(i)), math.Cos(0.013*float64(i)))
	}
	cfg := dsp.DefaultWelch(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.WelchComplex(x, 1e6, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKaiserWindow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = dsp.Kaiser(4096, 8)
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblate()
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkNoiseFold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunNoiseFold(0.9e9, 1.9e9, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkYield(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunYieldExperiment(6, 0.4)
		if err != nil {
			b.Fatal(err)
		}
		if r.InSpec.Yield < 1 {
			b.Fatalf("in-spec lot lost yield: %.2f", r.InSpec.Yield)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkAveraging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAveraging([]int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkLoopbackComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunLoopback()
		if err != nil {
			b.Fatal(err)
		}
		if r.LoopbackPass == r.PNBSPass {
			b.Fatal("fault-masking contrast lost")
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFilterResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFilterResp()
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkJamalInterpEstimate(b *testing.B) {
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	f0, err := skew.SineTestFrequency(band, band.B, 0.4*band.B)
	if err != nil {
		b.Fatal(err)
	}
	d := 180e-12
	tt := band.T()
	n := 512
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = math.Cos(2 * math.Pi * f0 * float64(i) * tt)
		ch1[i] = math.Cos(2 * math.Pi * f0 * (float64(i)*tt + d))
	}
	cfg := skew.SineEstimateConfig{F0: f0, B: band.B, DMax: 480e-12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := skew.EstimateJamalInterp(cfg, ch0, ch1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOFDMEnvelopeEval(b *testing.B) {
	o, err := modemNewOFDM()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc complex128
	for i := 0; i < b.N; i++ {
		acc += o.At(float64(i) * 1.37e-8)
	}
	_ = acc
}

func BenchmarkCPMEnvelopeEval(b *testing.B) {
	c, err := modemNewCPM()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc complex128
	for i := 0; i < b.N; i++ {
		acc += c.At(float64(i) * 1.37e-8)
	}
	_ = acc
}

func BenchmarkResampler(b *testing.B) {
	r, err := dsp.NewResampler(3, 2, 12, 70)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 4096)
	for i := range x {
		x[i] = math.Sin(0.05 * float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Apply(x)
	}
}

// Helpers keeping the benchmark imports tidy.
func modemNewOFDM() (*modem.OFDMEnvelope, error) {
	return modem.NewOFDM(modem.OFDMConfig{Subcarriers: 64, Spacing: 156.25e3, Seed: 1})
}

func modemNewCPM() (*modem.CPMEnvelope, error) {
	return modem.NewCPM(modem.CPMConfig{SymbolRate: 2e6, BT: 0.3, Symbols: 128, Seed: 1})
}

func BenchmarkOFDMDemod(b *testing.B) {
	o, err := modemNewOFDM()
	if err != nil {
		b.Fatal(err)
	}
	cfg := o.DemodConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := modem.DemodOFDM(o, cfg, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}
