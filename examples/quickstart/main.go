// Quickstart: reconstruct a 1 GHz bandpass QPSK burst from two 90 MS/s
// sample sets using second-order periodically nonuniform sampling
// (Kohlenberg interpolation) — the core mechanism of the paper, with no
// impairments in the way.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"repro/internal/modem"
	"repro/internal/pnbs"
	"repro/internal/sig"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// 1. Build the paper's test signal: 10 MHz QPSK symbols, SRRC with
	//    roll-off 0.5, carrier 1 GHz.
	pulse, err := modem.NewSRRC(100e-9, 0.5, 8)
	if err != nil {
		return err
	}
	symbols := modem.QPSK.RandomSymbols(64, 42)
	baseband, err := modem.NewShapedEnvelope(symbols, pulse, true)
	if err != nil {
		return err
	}
	rf := &sig.Passband{Env: baseband, Fc: 1e9}

	// 2. Describe the capture band: fc = 1 GHz, B = 90 MHz.
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	fmt.Fprintf(w, "band: fl = %.0f MHz, B = %.0f MHz, k = %d, optimal D = %.0f ps\n",
		band.FLow/1e6, band.B/1e6, band.K(), band.OptimalD()*1e12)

	// 3. Sample nonuniformly: two uniform sets f(nT) and f(nT + D), each at
	//    only 90 MS/s for a 1 GHz signal (a 2 GS/s Nyquist problem!).
	d := 180e-12
	tt := band.T()
	n := 400
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = rf.At(float64(i) * tt)
		ch1[i] = rf.At(float64(i)*tt + d)
	}

	// 4. Reconstruct with the 61-tap Kaiser-windowed Kohlenberg filter and
	//    check the waveform at instants the sampler never touched.
	rec, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, pnbs.Options{})
	if err != nil {
		return err
	}
	lo, hi := rec.ValidRange()
	fmt.Fprintf(w, "reconstruction valid over [%.0f, %.0f] ns\n", lo*1e9, hi*1e9)

	worst := 0.0
	for i := 0; i < 200; i++ {
		tv := lo + (hi-lo)*float64(i)/199
		if e := math.Abs(rec.At(tv) - rf.At(tv)); e > worst {
			worst = e
		}
	}
	fmt.Fprintf(w, "worst-case reconstruction error: %.2e (carrier cycles were never sampled uniformly)\n", worst)

	// 5. Show what the delay estimate accuracy must be (paper Eq. 4).
	for _, pct := range []float64{0.01, 0.001} {
		fmt.Fprintf(w, "delay accuracy for %.1f%% spectral error: %.2f ps\n",
			100*pct, pnbs.DeltaDFor(band, pct)*1e12)
	}
	return nil
}
