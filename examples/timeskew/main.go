// Timeskew: demonstrate the paper's LMS-based delay identification
// (Algorithm 1). The transmitter output is captured at two rates (B and
// B/2) by the BP-TIADC whose true inter-channel delay is unknown (DCDE bias
// + 10-bit quantization + 3 ps clock jitter); the LMS finds it blindly —
// no known test signal required.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/skew"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	setup := experiments.DefaultPaperSetup()

	// Build the paper's transmitter (10 MHz QPSK at 1 GHz) via the BIST
	// scenario and capture its output nonuniformly at both rates.
	cfg := core.PaperScenario()
	b, err := core.New(cfg)
	if err != nil {
		return err
	}
	setB, setB1, actualD, err := setup.AcquireDualRate(b.Transmitter().Output(), 300)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "true (hidden) delay: %.3f ps\n", actualD*1e12)

	ce, err := setup.Evaluator(setB, setB1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "search interval: ]0, %.0f ps[ (m from Section IV-A)\n", ce.M()*1e12)

	// Run Algorithm 1 from wildly wrong starting guesses.
	for _, d0 := range []float64{50e-12, 100e-12, 350e-12, 400e-12} {
		res, err := skew.Estimate(ce, d0, skew.LMSConfig{Mu0: 1e-12})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "D0 = %3.0f ps -> D-hat = %.3f ps  (err %.3f ps, %2d iterations, %d cost evals)\n",
			d0*1e12, res.DHat*1e12, (res.DHat-actualD)*1e12, res.Iterations, res.CostEvals)
		fmt.Fprint(w, "  cost trace:")
		for i, c := range res.CostHistory {
			if i > 8 {
				fmt.Fprint(w, " ...")
				break
			}
			fmt.Fprintf(w, " %.3g", c)
		}
		fmt.Fprintln(w)
	}
	return nil
}
