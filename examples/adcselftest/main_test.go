package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if out == "" {
		t.Fatal("no output")
	}
	for _, want := range []string{"=== converter: healthy ===", "histogram test", "dynamic test", "fit for BIST duty", "REJECT"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
