// Adcselftest: the instrument pre-check behind the "adc-inl" BIST fault.
// Before the receiver ADCs are trusted as the BIST's measurement front end,
// they are themselves tested: a sine-histogram static test measures DNL/INL
// and a single-tone FFT test measures SNDR/ENOB, on a healthy converter and
// on one with a gross ladder defect.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/adc"
	"repro/internal/dsp"
)

func main() {
	const bits = 10
	const freq = 0.012360679774997897 // golden-ratio based, maximally non-coherent

	healthyNL := (*adc.StaticNL)(nil)
	faultyNL, err := adc.NewRandomNL(bits, 1.0, 91)
	if err != nil {
		log.Fatal(err)
	}

	for _, unit := range []struct {
		name string
		nl   *adc.StaticNL
	}{
		{"healthy", healthyNL},
		{"ladder-mismatch (1 LSB rms DNL walk)", faultyNL},
	} {
		fmt.Printf("=== converter: %s ===\n", unit.name)

		// Static test: code-density histogram under a slightly overdriven,
		// non-coherent sine.
		conv, err := adc.New(adc.Config{Bits: bits, FullScale: 1, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		n := 1 << 19
		times := make([]float64, n)
		for i := range times {
			times[i] = float64(i)
		}
		codes := conv.SampleCodes(func(t float64) float64 {
			return 1.05 * math.Sin(2*math.Pi*freq*t)
		}, times, unit.nl)
		dnl, inl, err := adc.HistogramTest(codes, bits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  histogram test: worst DNL %.2f LSB, worst INL %.2f LSB\n",
			dsp.MaxAbsFloat(dnl), dsp.MaxAbsFloat(inl))

		// Dynamic test through the same nonlinearity.
		dyn, err := adc.New(adc.Config{Bits: bits, FullScale: 1, NL: unit.nl, Seed: 6})
		if err != nil {
			log.Fatal(err)
		}
		rec := make([]float64, 1<<13)
		for i := range rec {
			rec[i] = dyn.Quantize(0.98 * math.Sin(2*math.Pi*freq*float64(i)))
		}
		res, err := adc.DynamicTest(rec, freq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  dynamic test: SNDR %.1f dB, SFDR %.1f dB, THD %.1f dB, ENOB %.2f bits\n",
			res.SNDRdB, res.SFDRdB, res.THDdB, res.ENOB)

		verdict := "fit for BIST duty"
		if res.SNDRdB < 40 {
			verdict = "REJECT: would corrupt every downstream Tx measurement"
		}
		fmt.Printf("  verdict: %s\n\n", verdict)
	}
}
