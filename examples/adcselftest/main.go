// Adcselftest: the instrument pre-check behind the "adc-inl" BIST fault.
// Before the receiver ADCs are trusted as the BIST's measurement front end,
// they are themselves tested: a sine-histogram static test measures DNL/INL
// and a single-tone FFT test measures SNDR/ENOB, on a healthy converter and
// on one with a gross ladder defect.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"repro/internal/adc"
	"repro/internal/dsp"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const bits = 10
	const freq = 0.012360679774997897 // golden-ratio based, maximally non-coherent

	healthyNL := (*adc.StaticNL)(nil)
	faultyNL, err := adc.NewRandomNL(bits, 1.0, 91)
	if err != nil {
		return err
	}

	for _, unit := range []struct {
		name string
		nl   *adc.StaticNL
	}{
		{"healthy", healthyNL},
		{"ladder-mismatch (1 LSB rms DNL walk)", faultyNL},
	} {
		fmt.Fprintf(w, "=== converter: %s ===\n", unit.name)

		// Static test: code-density histogram under a slightly overdriven,
		// non-coherent sine.
		conv, err := adc.New(adc.Config{Bits: bits, FullScale: 1, Seed: 5})
		if err != nil {
			return err
		}
		n := 1 << 19
		times := make([]float64, n)
		for i := range times {
			times[i] = float64(i)
		}
		codes := conv.SampleCodes(func(t float64) float64 {
			return 1.05 * math.Sin(2*math.Pi*freq*t)
		}, times, unit.nl)
		dnl, inl, err := adc.HistogramTest(codes, bits)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  histogram test: worst DNL %.2f LSB, worst INL %.2f LSB\n",
			dsp.MaxAbsFloat(dnl), dsp.MaxAbsFloat(inl))

		// Dynamic test through the same nonlinearity.
		dyn, err := adc.New(adc.Config{Bits: bits, FullScale: 1, NL: unit.nl, Seed: 6})
		if err != nil {
			return err
		}
		rec := make([]float64, 1<<13)
		for i := range rec {
			rec[i] = dyn.Quantize(0.98 * math.Sin(2*math.Pi*freq*float64(i)))
		}
		res, err := adc.DynamicTest(rec, freq)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  dynamic test: SNDR %.1f dB, SFDR %.1f dB, THD %.1f dB, ENOB %.2f bits\n",
			res.SNDRdB, res.SFDRdB, res.THDdB, res.ENOB)

		verdict := "fit for BIST duty"
		if res.SNDRdB < 40 {
			verdict = "REJECT: would corrupt every downstream Tx measurement"
		}
		fmt.Fprintf(w, "  verdict: %s\n\n", verdict)
	}
	return nil
}
