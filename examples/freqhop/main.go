// Freqhop: a tactical frequency-hopping waveform through the nonuniform
// capture. The transmitter hops a GMSK-like tone among four in-band
// channels; the BP-TIADC captures the PA output at 2 x 90 MS/s, the
// Kohlenberg reconstruction recovers the waveform, and an STFT spectrogram
// of the reconstructed envelope recovers the hop sequence — a measurement a
// fixed-rate PBS front end could not make without re-planning its clock for
// every dwell.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"repro/internal/dsp"
	"repro/internal/pnbs"
	"repro/internal/rf"
	"repro/internal/sig"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	fc := 1e9
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	dwell := 2e-6 // 2 us per hop
	hops := []float64{-30e6, 10e6, -10e6, 30e6}

	// A hopping complex envelope: constant-amplitude tone whose frequency
	// switches every dwell with continuous phase.
	hopEnv := sig.EnvelopeFunc(func(t float64) complex128 {
		if t < 0 {
			return 0
		}
		k := int(t / dwell)
		// Accumulated phase of completed dwells keeps the trajectory
		// continuous across hops.
		phase := 0.0
		for j := 0; j < k; j++ {
			phase += 2 * math.Pi * hops[j%len(hops)] * dwell
		}
		phase += 2 * math.Pi * hops[k%len(hops)] * (t - float64(k)*dwell)
		s, c := math.Sincos(phase)
		return complex(0.6*c, 0.6*s)
	})

	tx, err := rf.NewTransmitter(rf.TxConfig{Fc: fc}, hopEnv)
	if err != nil {
		return err
	}

	// Nonuniform capture: two 90 MS/s channels, D = 180 ps.
	d := 180e-12
	tt := band.T()
	n := 1100
	out := tx.Output()
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = out.At(float64(i) * tt)
		ch1[i] = out.At(float64(i)*tt + d)
	}
	rec, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, pnbs.Options{})
	if err != nil {
		return err
	}

	// Reconstructed complex envelope on a uniform grid: mix at 4x
	// oversampling, lowpass away the 2fc image, decimate back to B.
	lo, hi := rec.ValidRange()
	fs := band.B
	const over = 4
	mHi := int((hi - lo) * fs * over)
	raw := make([]complex128, mHi)
	for i := range raw {
		tv := lo + float64(i)/(fs*over)
		v := rec.At(tv)
		s, c := math.Sincos(2 * math.Pi * fc * tv)
		raw[i] = complex(2*v*c, -2*v*s)
	}
	lpf, err := dsp.DesignLowpass(91, 0.45/over, dsp.KaiserWin, dsp.KaiserBeta(70))
	if err != nil {
		return err
	}
	env := lpf.Decimate(raw, over)
	// Spectrogram and hop track.
	sg, err := dsp.STFT(env, fs, 128, 32)
	if err != nil {
		return err
	}
	track := sg.PeakTrack()

	fmt.Fprintln(w, "reconstructed hop sequence (time -> offset from carrier):")
	lastHop := math.Inf(1)
	for i, tv := range sg.Times {
		f := track[i]
		if math.Abs(f-lastHop) > 5e6 {
			fmt.Fprintf(w, "  t = %6.2f us: %+6.1f MHz\n", (lo+tv)*1e6, f/1e6)
			lastHop = f
		}
	}
	fmt.Fprintln(w, "\nprogrammed dwell plan:")
	for k, h := range hops {
		fmt.Fprintf(w, "  t = %6.2f us: %+6.1f MHz\n", float64(k)*dwell*1e6, h/1e6)
	}
	fmt.Fprintln(w, "\nThe BIST recovered the hop plan from 2 x 90 MS/s captures of a 1 GHz signal.")
	return nil
}
