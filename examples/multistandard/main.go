// Multistandard: the flexibility argument of Section II-B. The same BIST —
// identical hardware, identical per-channel rate law (B twice) — tests four
// different waveforms at four carriers from 450 MHz to 3.1 GHz, while the
// uniform bandpass sampling (PBS) baseline needs a per-configuration
// alias-free rate hunt whose clock precision budget shrinks to kilohertz.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/pnbs"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	for _, cfg := range core.MultistandardScenarios() {
		// Demo-friendly sizes.
		cfg.CaptureLen = 1100
		cfg.NTimes = 400
		cfg.PSDLen = 768
		cfg.SegLen = 256

		b, err := core.New(cfg)
		if err != nil {
			return err
		}
		band := b.Band()
		fmt.Fprintf(w, "=== %s %.3g Msym/s @ %.3g GHz (B = %.0f MHz) ===\n",
			cfg.Constellation, cfg.SymbolRate/1e6, cfg.Fc/1e9, cfg.B/1e6)

		// What PBS would need for the same observation.
		win, err := pnbs.MinAliasFreeRate(band)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  PBS: best alias-free rate %.4f MHz, clock budget +-%.1f kHz\n",
			win.Lo/1e6, pnbs.RequiredClockPrecision(win)/1e3)
		fmt.Fprintf(w, "  PNBS: two channels at %.0f MS/s each (theoretical minimum), any band position\n",
			cfg.B/1e6)

		rep, err := b.Run()
		if err != nil {
			return err
		}
		maskState := "skipped"
		if rep.Mask != nil {
			maskState = fmt.Sprintf("%v (worst margin %+.1f dB)", rep.Mask.Pass, rep.Mask.WorstMarginDB)
		}
		fmt.Fprintf(w, "  delay: programmed %.1f ps, estimated %.2f ps (err %.2f ps, %d iters)\n",
			rep.DNominal*1e12, rep.DHat*1e12, rep.SkewErrPS(), rep.LMS.Iterations)
		fmt.Fprintf(w, "  reconstruction error %.2f %%, mask %s\n\n",
			100*rep.ReconRelErr, maskState)
	}
	return nil
}
