package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full BIST flow across four standards")
	}
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if out == "" {
		t.Fatal("no output")
	}
	for _, want := range []string{"PBS:", "PNBS:", "delay:", "reconstruction error"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
