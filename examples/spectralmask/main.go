// Spectralmask: the paper's motivating application end-to-end. A healthy
// SDR transmitter and a set of faulty units go through the complete BIST
// flow — nonuniform capture, LMS delay identification, Kohlenberg
// reconstruction, Welch PSD, spectral-mask verdict plus modulator health —
// and the verdicts are compared against what a golden ATE instrument would
// say.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	base := core.PaperScenario()
	// Keep runtime friendly for a demo.
	base.CaptureLen = 1400
	base.NTimes = 150
	base.PSDLen = 1024
	base.SegLen = 256

	runUnit := func(label string, mutate func(*core.Config)) error {
		cfg := base
		if mutate != nil {
			mutate(&cfg)
		}
		b, err := core.New(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		rep, err := b.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		fmt.Fprintf(w, "--- unit: %s ---\n%s\n", label, rep.Summary())
		return nil
	}

	if err := runUnit("healthy", nil); err != nil {
		return err
	}
	for _, f := range core.Catalog() {
		f := f
		expect := "must pass (benign)"
		if f.ShouldFail {
			expect = "must fail"
		}
		fmt.Fprintf(w, ">>> injecting %s — %s (%s)\n", f.Name, f.Description, expect)
		if err := runUnit(f.Name, f.Apply); err != nil {
			return err
		}
	}
	return nil
}
