// Spectralmask: the paper's motivating application end-to-end. A healthy
// SDR transmitter and a set of faulty units go through the complete BIST
// flow — nonuniform capture, LMS delay identification, Kohlenberg
// reconstruction, Welch PSD, spectral-mask verdict plus modulator health —
// and the verdicts are compared against what a golden ATE instrument would
// say.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	base := core.PaperScenario()
	// Keep runtime friendly for a demo.
	base.CaptureLen = 1400
	base.NTimes = 150
	base.PSDLen = 1024
	base.SegLen = 256

	run := func(label string, mutate func(*core.Config)) {
		cfg := base
		if mutate != nil {
			mutate(&cfg)
		}
		b, err := core.New(cfg)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		rep, err := b.Run()
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("--- unit: %s ---\n%s\n", label, rep.Summary())
	}

	run("healthy", nil)
	for _, f := range core.Catalog() {
		f := f
		expect := "must pass (benign)"
		if f.ShouldFail {
			expect = "must fail"
		}
		fmt.Printf(">>> injecting %s — %s (%s)\n", f.Name, f.Description, expect)
		run(f.Name, f.Apply)
	}
}
