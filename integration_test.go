package repro

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/pnbs"
	"repro/internal/rf"
	"repro/internal/sig"
	"repro/internal/skew"
)

// fastPaper shrinks the paper scenario for integration-test speed.
func fastPaper() core.Config {
	c := core.PaperScenario()
	c.CaptureLen = 900
	c.NTimes = 100
	c.PSDLen = 512
	c.SegLen = 256
	return c
}

func TestFullPipelineDeterministic(t *testing.T) {
	run := func() *core.Report {
		b, err := core.New(fastPaper())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.DHat != b.DHat {
		t.Errorf("DHat not reproducible: %v vs %v", a.DHat, b.DHat)
	}
	if a.ReconRelErr != b.ReconRelErr {
		t.Errorf("reconstruction error not reproducible")
	}
	if a.Mask.WorstMarginDB != b.Mask.WorstMarginDB {
		t.Errorf("mask margin not reproducible")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	b, err := core.New(fastPaper())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back core.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.DHat != rep.DHat || back.Pass != rep.Pass {
		t.Error("JSON round trip lost fields")
	}
}

// TestCrossLayerConsistency drives one signal through independently
// implemented paths and checks they agree: the Tx passband output sampled
// directly, the BP-TIADC capture reconstructed via Kohlenberg, and the
// matched-filter receiver, all referenced to the known symbol stream.
func TestCrossLayerConsistency(t *testing.T) {
	pulse, err := modem.NewSRRC(100e-9, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	syms := modem.QPSK.RandomSymbols(64, 99)
	bb, err := modem.NewShapedEnvelope(syms, pulse, true)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := rf.NewTransmitter(rf.TxConfig{Fc: 1e9}, bb)
	if err != nil {
		t.Fatal(err)
	}
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	d := band.OptimalD()
	tt := band.T()
	n := 700
	out := tx.Output()
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = out.At(float64(i) * tt)
		ch1[i] = out.At(float64(i)*tt + d)
	}
	rec, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, pnbs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 1. Waveform-level agreement at off-grid instants.
	lo, hi := rec.ValidRange()
	times := skew.RandomTimes(lo, hi, 300, 5)
	got := rec.AtTimes(times)
	want := sig.SampleAt(out, times)
	if rel := dsp.RelRMSError(got, want); rel > 1e-2 {
		t.Errorf("waveform path disagreement %g", rel)
	}
	// 2. Symbol-level agreement: demodulate the reconstructed envelope.
	grid := make([]complex128, 2048)
	fsEnv := band.B * 4
	gt0 := lo
	for i := range grid {
		v := rec.At(gt0 + float64(i)/fsEnv)
		s, c := math.Sincos(2 * math.Pi * band.Fc() * (gt0 + float64(i)/fsEnv))
		grid[i] = complex(2*v*c, -2*v*s)
	}
	lpf, err := dsp.DesignLowpass(91, 0.11, dsp.KaiserWin, dsp.KaiserBeta(70))
	if err != nil {
		t.Fatal(err)
	}
	dec := lpf.Decimate(grid, 4)
	env, err := sig.NewSampledEnvelope(gt0, 4/fsEnv, dec)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := modem.NewMatchedFilter(pulse, 8)
	if err != nil {
		t.Fatal(err)
	}
	eLo, eHi := env.Span()
	k0 := int(math.Ceil((eLo + 8*100e-9) / 100e-9))
	nSym := int(math.Floor((eHi-8*100e-9)/100e-9)) - k0
	if nSym < 16 {
		t.Fatalf("too few symbols in span (%d)", nSym)
	}
	if nSym > 40 {
		nSym = 40
	}
	rx := mf.Demod(env, k0, nSym)
	ref := make([]complex128, nSym)
	for i := range ref {
		ref[i] = syms[(k0+i)%len(syms)]
	}
	norm, err := modem.NormalizeScaleAndPhase(rx, ref)
	if err != nil {
		t.Fatal(err)
	}
	evm, err := modem.EVM(norm, ref)
	if err != nil {
		t.Fatal(err)
	}
	if evm.RMSPercent > 3 {
		t.Errorf("symbol path EVM %.2f%% through reconstruction", evm.RMSPercent)
	}
	ser, err := modem.SymbolErrorRate(modem.QPSK, norm, ref)
	if err != nil || ser != 0 {
		t.Errorf("symbol errors through the full chain: %g (%v)", ser, err)
	}
}

// TestEndToEndOFDM drives the non-single-carrier waveform through the
// library's public composition path (not the core orchestrator).
func TestEndToEndOFDM(t *testing.T) {
	ofdm, err := modem.NewOFDM(modem.OFDMConfig{Subcarriers: 32, Spacing: 312.5e3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := rf.NewTransmitter(rf.TxConfig{Fc: 1e9}, sig.ScaleEnv(ofdm, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	tt := band.T()
	n := 500
	out := tx.Output()
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = out.At(float64(i) * tt)
		ch1[i] = out.At(float64(i)*tt + d)
	}
	rec, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, pnbs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rec.ValidRange()
	times := skew.RandomTimes(lo, hi, 200, 6)
	if rel := dsp.RelRMSError(rec.AtTimes(times), sig.SampleAt(out, times)); rel > 1e-2 {
		t.Errorf("OFDM reconstruction error %g", rel)
	}
}

// TestOFDMEVMThroughReconstruction demodulates a CP-OFDM waveform from the
// nonuniform capture: capture at 2 x 90 MS/s, Kohlenberg-reconstruct, mix
// to baseband, equalised-DFT demod, per-subcarrier EVM against the known
// payload.
func TestOFDMEVMThroughReconstruction(t *testing.T) {
	ofdm, err := modem.NewOFDM(modem.OFDMConfig{Subcarriers: 32, Spacing: 312.5e3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := rf.NewTransmitter(rf.TxConfig{Fc: 1e9}, sig.ScaleEnv(ofdm, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	band := pnbs.Band{FLow: 955e6, B: 90e6}
	d := 180e-12
	tt := band.T()
	n := 2400
	out := tx.Output()
	ch0 := make([]float64, n)
	ch1 := make([]float64, n)
	for i := 0; i < n; i++ {
		ch0[i] = out.At(float64(i) * tt)
		ch1[i] = out.At(float64(i)*tt + d)
	}
	rec, err := pnbs.NewReconstructor(band, d, 0, ch0, ch1, pnbs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Envelope grid (oversample + lowpass to kill the 2fc image).
	lo, hi := rec.ValidRange()
	const over = 4
	fsHi := band.B * over
	m := int((hi - lo) * fsHi)
	raw := make([]complex128, m)
	for i := range raw {
		tv := lo + float64(i)/fsHi
		v := rec.At(tv)
		s, c := math.Sincos(2 * math.Pi * 1e9 * tv)
		raw[i] = complex(2*v*c, -2*v*s)
	}
	lpf, err := dsp.DesignLowpass(91, 0.45/over, dsp.KaiserWin, dsp.KaiserBeta(70))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sig.NewSampledEnvelope(lo, over/fsHi, lpf.Decimate(raw, over))
	if err != nil {
		t.Fatal(err)
	}
	// Demodulate whole OFDM symbols inside the span.
	eLo, eHi := env.Span()
	tSym := ofdm.SymbolPeriod()
	m0 := int(math.Ceil(eLo/tSym)) + 1
	mEnd := int(math.Floor(eHi/tSym)) - 1
	if mEnd-m0 < 3 {
		t.Fatalf("only %d OFDM symbols in span", mEnd-m0)
	}
	nSym := mEnd - m0
	if nSym > 5 {
		nSym = 5
	}
	got, err := modem.DemodOFDM(env, ofdm.DemodConfig(), m0, nSym)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]complex128, nSym)
	for i := range want {
		p, err := ofdm.Payload((m0 + i) % 16)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	evm, err := modem.OFDMEVM(got, want)
	if err != nil {
		t.Fatal(err)
	}
	// Noiseless capture: only the reconstruction and demod floors remain.
	if evm > 4 {
		t.Errorf("OFDM EVM through reconstruction %.2f%%", evm)
	}
}
