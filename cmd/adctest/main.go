// Command adctest exercises the converter test bench on a simulated ADC:
// it runs the sine-histogram static test (DNL/INL) and the single-tone FFT
// dynamic test (SNDR/SFDR/THD/ENOB) against a configurable converter model
// and prints the results, optionally dumping the INL profile as CSV.
//
// Example:
//
//	adctest -bits 10 -inl bow -peak 4 -csv
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/adc"
	"repro/internal/dsp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "adctest:", err)
		os.Exit(1)
	}
}

func run(args []string, out, diag io.Writer) error {
	fs := flag.NewFlagSet("adctest", flag.ContinueOnError)
	bits := fs.Int("bits", 10, "converter resolution")
	inlKind := fs.String("inl", "none", "injected nonlinearity: none, bow, random")
	peak := fs.Float64("peak", 2, "bow peak INL [LSB] or random DNL rms [LSB]")
	jitter := fs.Float64("jitter", 0, "aperture jitter [s rms]")
	noise := fs.Float64("noise", 0, "input noise [V rms]")
	seed := fs.Int64("seed", 1, "model seed")
	nHist := fs.Int("nhist", 1<<19, "histogram test record length")
	nDyn := fs.Int("ndyn", 1<<13, "dynamic test record length")
	csv := fs.Bool("csv", false, "dump measured INL profile as CSV on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var nl *adc.StaticNL
	var err error
	switch *inlKind {
	case "none":
	case "bow":
		if nl, err = adc.NewBowNL(*bits, *peak); err != nil {
			return err
		}
	case "random":
		if nl, err = adc.NewRandomNL(*bits, *peak, *seed); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown INL kind %q", *inlKind)
	}

	conv, err := adc.New(adc.Config{
		Bits: *bits, FullScale: 1,
		JitterRMS: *jitter, NoiseRMS: *noise, Seed: *seed,
	})
	if err != nil {
		return err
	}

	// Static test: slightly overdriven non-coherent sine.
	const freq = 0.012360679774997897 // golden-ratio based: maximally non-coherent
	times := make([]float64, *nHist)
	for i := range times {
		times[i] = float64(i)
	}
	codes := conv.SampleCodes(func(t float64) float64 {
		return 1.05 * math.Sin(2*math.Pi*freq*t)
	}, times, nl)
	dnl, inl, err := adc.HistogramTest(codes, *bits)
	if err != nil {
		return err
	}
	fmt.Fprintf(diag, "static test (%d samples):\n", *nHist)
	fmt.Fprintf(diag, "  worst DNL %.3f LSB, worst INL %.3f LSB\n",
		dsp.MaxAbsFloat(dnl), dsp.MaxAbsFloat(inl))

	// Dynamic test through the same nonlinearity.
	var nlConv *adc.ADC
	nlConv, err = adc.New(adc.Config{
		Bits: *bits, FullScale: 1, NL: nl,
		JitterRMS: *jitter, NoiseRMS: *noise, Seed: *seed + 1,
	})
	if err != nil {
		return err
	}
	samples := make([]float64, *nDyn)
	for i := range samples {
		samples[i] = nlConv.Quantize(0.98 * math.Sin(2*math.Pi*freq*float64(i)))
	}
	dyn, err := adc.DynamicTest(samples, freq)
	if err != nil {
		return err
	}
	fmt.Fprintf(diag, "dynamic test (%d samples):\n", *nDyn)
	fmt.Fprintf(diag, "  SNDR %.2f dB, SFDR %.2f dB, THD %.2f dB, ENOB %.2f bits\n",
		dyn.SNDRdB, dyn.SFDRdB, dyn.THDdB, dyn.ENOB)

	if *csv {
		fmt.Fprintln(out, "code,inl_lsb")
		for k, v := range inl {
			fmt.Fprintf(out, "%d,%.4f\n", k, v)
		}
	}
	return nil
}
