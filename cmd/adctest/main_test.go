package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAdctestHealthy(t *testing.T) {
	var out, diag bytes.Buffer
	if err := run([]string{"-bits", "8", "-nhist", "131072", "-ndyn", "4096", "-csv"}, &out, &diag); err != nil {
		t.Fatal(err)
	}
	d := diag.String()
	if !strings.Contains(d, "worst DNL") || !strings.Contains(d, "ENOB") {
		t.Errorf("diagnostics missing:\n%s", d)
	}
	if !strings.HasPrefix(out.String(), "code,inl_lsb") {
		t.Error("CSV header missing")
	}
}

func TestAdctestInjectedNL(t *testing.T) {
	var out, diag bytes.Buffer
	if err := run([]string{"-bits", "8", "-inl", "bow", "-peak", "2", "-nhist", "131072", "-ndyn", "4096"}, &out, &diag); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bits", "8", "-inl", "random", "-peak", "0.5", "-nhist", "131072", "-ndyn", "4096"}, &out, &diag); err != nil {
		t.Fatal(err)
	}
}

func TestAdctestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-inl", "nope"}, &buf, &buf); err == nil {
		t.Error("unknown INL kind must fail")
	}
	if err := run([]string{"-bits", "40", "-inl", "bow"}, &buf, &buf); err == nil {
		t.Error("absurd bits must fail")
	}
	if err := run([]string{"-bogus"}, &buf, &buf); err == nil {
		t.Error("bad flag must fail")
	}
}
