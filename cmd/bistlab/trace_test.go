package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/par"
	"repro/internal/testkit"
)

// fig6Normalized runs the reduced Fig. 6 experiment through the real CLI
// entry point with tracing on and returns the normalized trace bytes.
func fig6Normalized(t *testing.T, workers int) []byte {
	t.Helper()
	prev := par.SetWorkers(workers)
	defer par.SetWorkers(prev)
	out := filepath.Join(t.TempDir(), "norm.json")
	if err := run(discard{}, []string{"fig6", "-scale", "0.25", "-trace-normalized", out}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// discard is a throwaway writer for runs whose report we ignore.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// The normalized span tree of the reduced Fig. 6 run is part of the
// repository's golden surface: byte-identical at any worker count and
// pinned to a committed file, the same way the experiment's numbers are.
func TestFig6NormalizedTraceGolden(t *testing.T) {
	one := fig6Normalized(t, 1)
	four := fig6Normalized(t, 4)
	if !bytes.Equal(one, four) {
		t.Fatalf("normalized trace differs between worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", one, four)
	}
	const golden = "testdata/golden/fig6_trace_normalized.json"
	if *testkit.Update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, one, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(one))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	// Byte equality, not tolerance comparison: the normalized form contains
	// no timestamps, so any drift is a structural change that should be
	// reviewed and re-pinned deliberately.
	if !bytes.Equal(one, want) {
		t.Errorf("normalized trace drifted from golden (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", one, want)
	}
}

// A traced mask run must export a Perfetto-loadable file with the BIST
// stage spans, the provenance instant at the head, counter events, and one
// thread row per par worker.
func TestMaskChromeTraceStructure(t *testing.T) {
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	out := filepath.Join(t.TempDir(), "mask.trace.json")
	if err := run(discard{}, []string{"mask", "-scale", "0.35", "-trace", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	count := map[string]int{}
	workerRows := 0
	provenanceIdx := -1
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X", "C":
			count[ev.Name]++
		case "I":
			if ev.Name == "provenance" && provenanceIdx < 0 {
				provenanceIdx = i
			}
		case "M":
			if ev.Name == "thread_name" {
				if n, _ := ev.Args["name"].(string); strings.HasPrefix(n, "par.worker.") {
					workerRows++
				}
			}
		}
	}
	for _, name := range []string{"core.bist.run", "core.stage.acquire", "core.stage.estimate",
		"core.stage.reconstruct", "core.stage.measure", "skew.lms", "skew.lms.iter",
		"skew.cost.eval", "par.worker", "par.task"} {
		if count[name] == 0 {
			t.Errorf("no %q spans in the mask trace", name)
		}
	}
	counters := 0
	for name, n := range count {
		if strings.HasPrefix(name, "skew.lms.dhat[") || strings.HasPrefix(name, "skew.lms.cost[") {
			counters += n
		}
	}
	if counters == 0 {
		t.Error("no LMS counter events in the mask trace")
	}
	if workerRows < 2 {
		t.Errorf("%d par worker thread rows, want several at 4 workers", workerRows)
	}
	if provenanceIdx != 1 {
		t.Errorf("provenance instant at event index %d, want 1 (after process_name)", provenanceIdx)
	}
	prov, _ := doc.OtherData["provenance"].(map[string]any)
	if prov == nil {
		t.Fatal("otherData missing the provenance manifest")
	}
	if prov["Tool"] != "bistlab" || prov["Experiment"] != "mask" {
		t.Errorf("manifest identity wrong: %v", prov)
	}
	if h, _ := prov["ConfigHash"].(string); len(h) != 16 {
		t.Errorf("manifest ConfigHash %q", h)
	}
}

func TestTraceToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"fig3b", "-trace", "-"}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"traceEvents"`) {
		t.Error("-trace - did not write the trace to the report stream")
	}
	if !strings.Contains(s, "bistlab.run") {
		t.Error("trace missing the bistlab.run span")
	}
}

func TestManifestFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"fig3b", "-manifest"}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "---- provenance ----") {
		t.Error("-manifest did not append the provenance block")
	}
	for _, frag := range []string{`"Tool": "bistlab"`, `"Experiment": "fig3b"`, `"Seed": 2014`, `"ConfigHash"`} {
		if !strings.Contains(s, frag) {
			t.Errorf("manifest missing %s", frag)
		}
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	rt := filepath.Join(dir, "rt.trace")
	if err := run(discard{}, []string{"fig3b", "-cpuprofile", cpu, "-memprofile", mem, "-runtimetrace", rt}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, rt} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s not written: %v", filepath.Base(p), err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(p))
		}
	}
}
