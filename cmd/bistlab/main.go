// Command bistlab regenerates every table and figure of the paper's
// evaluation (DATE 2014, "A flexible BIST strategy for SDR transmitters").
//
// Usage:
//
//	bistlab <experiment> [flags]
//
// Experiments:
//
//	fig3a   PBS alias-free wedges, normalised (paper Fig. 3a)
//	fig3b   feasible subsampling rates for fH = 2.03 GHz, B = 30 MHz (Fig. 3b)
//	fig5    cost function vs delay estimate (Fig. 5)
//	fig6    LMS convergence from several starts (Fig. 6)
//	table1  time-skew estimation comparison (Table I)
//	eq4     reconstruction-error bound validation (Eq. 4/5)
//	dsweep  kernel coefficient magnitude vs delay (Section II-B.1)
//	mask    end-to-end spectral-mask BIST with fault injection
//	flex    multistandard flexibility sweep (Section II-B)
//	ablate  design-choice sweeps (taps, window, N, jitter) + minimiser duel
//	noise   wideband-noise folding analysis (Section II-B.3)
//	yield   Monte-Carlo production yield (in-spec vs marginal lot)
//	avg     multi-capture averaging of the delay estimate
//	loop    loopback fault-masking vs direct PNBS observation
//	resp    reconstruction-filter frequency response vs length
//	all     run everything above in sequence
//
// Coverage campaigns (not part of "all"):
//
//	campaign  stimulus x fault detection matrix; -campaign selects the
//	          grid JSON file (default: the built-in reference grid).
//	          `bistlab -campaign grid.json` is accepted as a shorthand.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime/pprof"
	rtrace "runtime/trace"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/eventlog"
	"repro/internal/obs/provenance"
	"repro/internal/obs/trace"
	"repro/internal/testkit"
)

// Per-experiment instruments: one counter per experiment name plus a shared
// latency histogram, so `bistlab all -metrics` profiles the whole paper
// regeneration in one pass.
var hExperiment = obs.H("bistlab.experiment.seconds", obs.LatencyBuckets)

// tnBistlabRun is the root span every experiment invocation runs under.
var tnBistlabRun = trace.Intern("bistlab.run")

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bistlab:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bistlab", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "capture/PSD size scale in (0, 1]: smaller is faster, noisier")
	nPts := fs.Int("points", 0, "sweep point count (experiment-specific default when 0)")
	jsonOut := fs.Bool("json", false, "emit the structured result as JSON instead of text")
	campaignPath := fs.String("campaign", "", "coverage-campaign grid JSON file (\"default\" or empty = built-in reference grid); implies the campaign experiment when no name is given")
	metrics := fs.Bool("metrics", false, "collect runtime metrics and append a per-run metrics block to the report")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/vars on this address for the run's duration (implies -metrics)")
	pprofFlag := fs.Bool("pprof", false, "also serve /debug/pprof on -metrics-addr (net/http/pprof)")
	traceOut := fs.String("trace", "", "record a hierarchical trace and write Chrome trace-event JSON (Perfetto-loadable) to this file; - writes to stdout")
	traceNorm := fs.String("trace-normalized", "", "also write the normalized (timestamp-free, worker-count-invariant) span tree to this file; - writes to stdout")
	manifest := fs.Bool("manifest", false, "append the run-provenance manifest (canonical JSON) to the report")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (offline alternative to -pprof's live endpoint)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	runtimetrace := fs.String("runtimetrace", "", "write a runtime/trace execution trace (go tool trace) to this file; scheduler-level, unlike -trace's pipeline spans")
	logJSON := fs.Bool("log-json", false, "emit lifecycle events as canonical JSON lines on stderr instead of text")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bistlab <fig3a|fig3b|fig5|fig6|table1|eq4|dsweep|mask|flex|ablate|noise|yield|avg|loop|resp|all> [flags]")
		fs.PrintDefaults()
	}
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing experiment name")
	}
	// `bistlab -campaign grid.json` (flags only, no positional experiment)
	// is the documented campaign shorthand.
	name, rest := args[0], args[1:]
	if len(name) > 0 && name[0] == '-' {
		name, rest = "", args
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if name == "" {
		if *campaignPath == "" {
			fs.Usage()
			return fmt.Errorf("missing experiment name")
		}
		name = "campaign"
	}
	if *pprofFlag && *metricsAddr == "" {
		return fmt.Errorf("-pprof needs -metrics-addr to serve on")
	}
	collect := *metrics || *metricsAddr != ""
	if collect {
		obs.Enable()
		obs.Reset() // per-run deltas, not process-lifetime totals
		defer obs.Disable()
	}
	// Lifecycle events go to stderr, so stdout stays the byte-deterministic
	// report stream. Installed only for this run; restored on return so the
	// run() helper stays reentrant under test.
	if *logJSON {
		defer eventlog.Set(eventlog.Set(slog.New(eventlog.NewJSONHandler(os.Stderr))))
	} else {
		defer eventlog.Set(eventlog.Set(slog.New(slog.NewTextHandler(os.Stderr, nil))))
	}
	if *metricsAddr != "" {
		srv, err := startMetricsServer(*metricsAddr, *pprofFlag)
		if err != nil {
			return err
		}
		defer srv.Close()
		eventlog.Emit("bistlab.metrics.serving",
			slog.String("metrics", "http://"+srv.Addr()+"/metrics"),
			slog.String("prom", "http://"+srv.Addr()+"/metrics.prom"))
		if *pprofFlag {
			eventlog.Emit("bistlab.pprof.serving",
				slog.String("pprof", "http://"+srv.Addr()+"/debug/pprof/"))
		}
	}
	// Offline profiling (file-based, vs. -pprof's live endpoint — see
	// README's Tracing section for when to use which).
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bistlab: memprofile:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bistlab: memprofile:", err)
			}
		}()
	}
	if *runtimetrace != "" {
		f, err := os.Create(*runtimetrace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return err
		}
		defer rtrace.Stop()
	}
	// The provenance manifest fingerprints this invocation; it is embedded
	// in every trace export and appended standalone under -manifest.
	collectManifest := func() (provenance.Manifest, error) {
		return provenance.Collect("bistlab", name, experiments.DefaultPaperSetup().Seed,
			struct {
				Experiment string
				Scale      float64
				Points     int
			}{name, *scale, *nPts})
	}
	tracing := *traceOut != "" || *traceNorm != ""
	if tracing {
		if err := trace.StartRecording(trace.Config{}); err != nil {
			return err
		}
	}
	runErr := func() error {
		if name == "all" {
			for _, n := range []string{"fig3a", "fig3b", "fig5", "fig6", "table1", "eq4", "dsweep", "mask", "flex", "ablate", "noise", "yield", "avg", "loop", "resp"} {
				fmt.Fprintf(w, "==== %s ====\n", n)
				if err := runOne(w, n, *scale, *nPts, *jsonOut, *campaignPath); err != nil {
					return fmt.Errorf("%s: %w", n, err)
				}
				fmt.Fprintln(w)
			}
			return nil
		}
		return runOne(w, name, *scale, *nPts, *jsonOut, *campaignPath)
	}()
	if tracing {
		rec := trace.StopRecording()
		if runErr == nil && rec != nil {
			man, err := collectManifest()
			if err != nil {
				return err
			}
			rec.SetManifest(man)
			if *traceOut != "" {
				if err := writeArtifact(w, *traceOut, rec.WriteChrome); err != nil {
					return fmt.Errorf("trace: %w", err)
				}
			}
			if *traceNorm != "" {
				b, err := rec.MarshalNormalized()
				if err != nil {
					return fmt.Errorf("trace-normalized: %w", err)
				}
				if err := writeArtifact(w, *traceNorm, func(out io.Writer) error {
					_, err := out.Write(b)
					return err
				}); err != nil {
					return fmt.Errorf("trace-normalized: %w", err)
				}
			}
		}
	}
	if runErr != nil {
		return runErr
	}
	if *manifest {
		man, err := collectManifest()
		if err != nil {
			return err
		}
		b, err := man.MarshalCanonical()
		if err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Fprintln(w, "---- provenance ----")
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	if collect {
		return emitMetricsBlock(w, *jsonOut)
	}
	return nil
}

// writeArtifact writes via emitFn either to the report stream ("-") or to a
// freshly created file.
func writeArtifact(w io.Writer, path string, emitFn func(io.Writer) error) error {
	if path == "-" {
		return emitFn(w)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emitFn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emitMetricsBlock appends the per-run metrics snapshot to the report: a
// delimited section in text mode, a second canonical-JSON document (JSON
// lines style) after the result in -json mode. Counters are deltas since
// the start of the invocation (the registry is reset before the run), so
// piping the output into a BENCH_*.json trajectory carries cost-eval and
// cache-traffic counts alongside ns/op.
func emitMetricsBlock(w io.Writer, jsonOut bool) error {
	b, err := obs.MarshalSnapshot()
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Fprintln(w, "---- metrics ----")
	}
	_, err = w.Write(b)
	return err
}

// renderer unifies text and JSON emission: every experiment result is an
// exported struct with a Render method.
type renderer interface{ Render(io.Writer) }

// emit writes v as text or as canonical JSON. The canonical encoder keeps
// -json output byte-deterministic across runs and platforms (declaration-
// order fields, sorted map keys, shortest-roundtrip floats) and — unlike
// encoding/json — survives the ±Inf sentinels some results legitimately
// carry (e.g. empty alias-free wedges in fig3a).
func emit(w io.Writer, v renderer, jsonOut bool) error {
	if !jsonOut {
		v.Render(w)
		return nil
	}
	b, err := testkit.MarshalCanonical(v)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func runOne(w io.Writer, name string, scale float64, nPts int, jsonOut bool, campaignPath string) error {
	obs.C("bistlab.runs." + name).Inc()
	sp := hExperiment.Start()
	defer sp.End()
	tsp := trace.Start(trace.Root, tnBistlabRun)
	tsp.SetAttr("experiment", name)
	defer tsp.End()
	setup := experiments.DefaultPaperSetup()
	switch name {
	case "fig3a":
		return emit(w, experiments.RunFig3a(3, nPts), jsonOut)
	case "fig3b":
		r, err := experiments.RunFig3b()
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "fig5":
		r, err := experiments.RunFig5(setup, 0, 0, nPts, 0)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "fig6":
		// -scale shrinks the cost-function point count and -points the
		// rate-B capture length, which is what lets `make trace-smoke`
		// capture a reduced Fig. 6 trace in seconds.
		if scale > 0 && scale < 1 {
			if n := int(float64(setup.NTimes) * scale); n >= 16 {
				setup.NTimes = n
			} else {
				setup.NTimes = 16
			}
		}
		r, err := experiments.RunFig6(setup, nil, nPts)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "table1":
		r, err := experiments.RunTable1(setup, 0)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "eq4":
		r, err := experiments.RunEq4(nil)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "dsweep":
		r, err := experiments.RunDSweep(setup.BandB, 0, nPts)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "mask":
		r, err := experiments.RunMaskBIST(scale)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "flex":
		r, err := experiments.RunFlex(scale)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "ablate":
		r, err := experiments.RunAblate()
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "noise":
		r, err := experiments.RunNoiseFold(0.9e9, 1.9e9, 1e-4)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "yield":
		r, err := experiments.RunYieldExperiment(nPts, scale)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "avg":
		r, err := experiments.RunAveraging(nil)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "loop":
		r, err := experiments.RunLoopback()
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "resp":
		r, err := experiments.RunFilterResp()
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	case "campaign":
		var grid *campaign.Grid
		if campaignPath != "" && campaignPath != "default" {
			data, err := os.ReadFile(campaignPath)
			if err != nil {
				return err
			}
			g, err := campaign.ParseGrid(data)
			if err != nil {
				return err
			}
			grid = &g
		}
		// -scale < 1 overrides the grid's own scale, mirroring the other
		// experiments (and letting `make campaign-smoke` shrink a committed
		// grid without editing it).
		r, err := experiments.RunCoverage(grid, scale, 0)
		if err != nil {
			return err
		}
		return emit(w, r, jsonOut)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
