package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestMetricsEndpoint(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	defer obs.Reset()
	obs.Reset()
	obs.C("test.endpoint.hits").Add(3)

	srv, err := startMetricsServer("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap struct {
		Counters map[string]int64
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, body)
	}
	if snap.Counters["test.endpoint.hits"] != 3 {
		t.Errorf("counter not visible over HTTP: %v", snap.Counters)
	}

	code, body = get(t, "http://"+srv.Addr()+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(string(body), `"bist"`) {
		t.Error("expvar view missing the bist variable")
	}

	// pprof was not requested: the mux must not expose it.
	code, _ = get(t, "http://"+srv.Addr()+"/debug/pprof/")
	if code == http.StatusOK {
		t.Error("pprof served without -pprof")
	}
}

func TestPprofBehindFlag(t *testing.T) {
	srv, err := startMetricsServer("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("pprof index status %d", code)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

func TestMetricsBlockAppended(t *testing.T) {
	defer obs.Reset()
	var buf bytes.Buffer
	if err := run(&buf, []string{"fig3b", "-metrics"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	i := strings.Index(out, "---- metrics ----")
	if i < 0 {
		t.Fatalf("no metrics block in output:\n%s", out)
	}
	if !strings.Contains(out[i:], `"bistlab.runs.fig3b": 1`) {
		t.Errorf("metrics block missing the per-experiment counter:\n%s", out[i:])
	}
	// The flag must not leak collection into later invocations.
	if obs.Enabled() {
		t.Error("metrics left enabled after run returned")
	}
}

func TestMetricsBlockJSONMode(t *testing.T) {
	defer obs.Reset()
	var buf bytes.Buffer
	if err := run(&buf, []string{"fig3b", "-json", "-metrics"}); err != nil {
		t.Fatal(err)
	}
	// Two canonical JSON documents: the result, then the snapshot. Both
	// must decode.
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	var docs int
	for dec.More() {
		var v any
		if err := dec.Decode(&v); err != nil {
			t.Fatalf("document %d: %v", docs, err)
		}
		docs++
	}
	if docs != 2 {
		t.Errorf("expected result + metrics documents, got %d", docs)
	}
	if !strings.Contains(buf.String(), `"skew.cost.evals"`) {
		t.Error("metrics document missing counters")
	}
}

func TestPprofRequiresAddr(t *testing.T) {
	if err := run(io.Discard, []string{"fig3b", "-pprof"}); err == nil {
		t.Error("-pprof without -metrics-addr must fail")
	}
}

func TestRunWithMetricsAddr(t *testing.T) {
	defer obs.Reset()
	// The server binds, serves for the run's duration, and releases the
	// port on return.
	if err := run(io.Discard, []string{"fig3b", "-metrics-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}

func TestPprofMuxServesAllHandlers(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	defer obs.Reset()
	obs.Reset()
	obs.C("test.pprof.mux").Inc()

	srv, err := startMetricsServer("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Every registered pprof route must answer, not just the index.
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/symbol",
	} {
		code, body := get(t, "http://"+srv.Addr()+path)
		if code != http.StatusOK {
			t.Errorf("GET %s: status %d", path, code)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}

	// Enabling pprof must not displace the metrics surface on the same mux.
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d with pprof enabled", code)
	}
	var snap struct {
		Counters map[string]int64
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON with pprof enabled: %v", err)
	}
	if snap.Counters["test.pprof.mux"] != 1 {
		t.Errorf("counter not visible with pprof enabled: %v", snap.Counters)
	}
	if code, _ := get(t, "http://"+srv.Addr()+"/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars status %d with pprof enabled", code)
	}
}
