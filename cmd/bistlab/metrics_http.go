package main

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/obs"
)

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and tests start several servers in one process.
var publishOnce sync.Once

// metricsServer is the -metrics-addr HTTP endpoint: /metrics serves the
// canonical-JSON snapshot of the default obs registry, /debug/vars the
// expvar view of the same data (plus the stdlib memstats/cmdline vars),
// and — only when requested — /debug/pprof. A private mux is used instead
// of http.DefaultServeMux precisely so importing net/http/pprof does not
// unconditionally expose profiling.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

func startMetricsServer(addr string, withPprof bool) (*metricsServer, error) {
	publishOnce.Do(func() {
		expvar.Publish("bist", expvar.Func(obs.ExpvarFunc()))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		b, err := obs.MarshalSnapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &metricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (resolves ":0" to the real port).
func (s *metricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *metricsServer) Close() error { return s.srv.Close() }
