package main

import (
	"repro/internal/httpx"
)

// startMetricsServer stands up the -metrics-addr endpoint on the shared
// hardened server (header-read timeout, graceful stop): /metrics serves
// the canonical-JSON snapshot of the default obs registry, /debug/vars the
// expvar view, and — only when requested — /debug/pprof. See
// internal/httpx for the mux and serving policy.
func startMetricsServer(addr string, withPprof bool) (*httpx.Server, error) {
	return httpx.Serve(addr, httpx.ObsMux(withPprof))
}
