package main

import "testing"

func TestRunOneCheapExperiments(t *testing.T) {
	for _, name := range []string{"fig3a", "fig3b", "eq4", "dsweep", "noise"} {
		if err := runOne(name, 1, 0, false); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("nope", 1, 0, true); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunArgHandling(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing experiment must fail")
	}
	if err := run([]string{"fig3b"}); err != nil {
		t.Errorf("fig3b: %v", err)
	}
	if err := run([]string{"fig3b", "-json"}); err != nil {
		t.Errorf("fig3b -json: %v", err)
	}
	if err := run([]string{"fig3b", "-bogus"}); err == nil {
		t.Error("bad flag must fail")
	}
}
