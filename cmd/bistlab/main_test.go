package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOneCheapExperiments(t *testing.T) {
	for _, name := range []string{"fig3a", "fig3b", "eq4", "dsweep", "noise"} {
		var buf bytes.Buffer
		if err := runOne(&buf, name, 1, 0, false, ""); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: no output", name)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne(io.Discard, "nope", 1, 0, true, ""); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunArgHandling(t *testing.T) {
	if err := run(io.Discard, nil); err == nil {
		t.Error("missing experiment must fail")
	}
	if err := run(io.Discard, []string{"fig3b"}); err != nil {
		t.Errorf("fig3b: %v", err)
	}
	if err := run(io.Discard, []string{"fig3b", "-json"}); err != nil {
		t.Errorf("fig3b -json: %v", err)
	}
	if err := run(io.Discard, []string{"fig3b", "-bogus"}); err == nil {
		t.Error("bad flag must fail")
	}
}

// TestJSONByteDeterminism: two identical -json invocations must produce
// byte-identical output — the property the golden harness and any downstream
// diff tooling rely on.
func TestJSONByteDeterminism(t *testing.T) {
	for _, name := range []string{"fig3a", "fig3b", "eq4", "dsweep", "noise"} {
		var a, b bytes.Buffer
		if err := runOne(&a, name, 1, 0, true, ""); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := runOne(&b, name, 1, 0, true, ""); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: -json output differs between identical runs", name)
		}
	}
}

// TestJSONSurvivesInf: fig3a's empty wedges carry ±Inf, which encoding/json
// rejects outright; the canonical encoder must emit valid JSON with string
// sentinels instead.
func TestJSONSurvivesInf(t *testing.T) {
	var buf bytes.Buffer
	if err := runOne(&buf, "fig3a", 1, 0, true, ""); err != nil {
		t.Fatalf("fig3a -json: %v", err)
	}
	var v any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("fig3a -json is not valid JSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"Infinity"`) {
		t.Error("expected an Infinity sentinel in fig3a JSON output")
	}
}

// TestCampaignCLIGolden: `bistlab -campaign grid.json -json` (the
// flags-only shorthand) reproduces the committed smoke golden byte for
// byte, and the matrix carries at least one escape — the smoke grid's
// backed-off 16QAM stimulus shipping the compressed PA. Regenerate the
// golden with `make campaign-smoke-update` after an intended change.
func TestCampaignCLIGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-campaign", filepath.Join("testdata", "campaign_smoke_grid.json"), "-json"}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "campaign_smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("campaign -json output differs from testdata/golden/campaign_smoke.json (regenerate with make campaign-smoke-update if intended)")
	}
	var m struct {
		Escapes []struct{ Stimulus, Fault string }
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Escapes) == 0 {
		t.Error("smoke matrix has no escapes — the coverage measurement lost its teeth")
	}
}

// TestCampaignCLIPositional: the positional form and the default grid path
// both work (tiny -scale keeps it fast; scale floors make it identical to
// any smaller value).
func TestCampaignCLIPositional(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, []string{"campaign", "-campaign", filepath.Join("testdata", "campaign_smoke_grid.json"), "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, []string{"-campaign", filepath.Join("testdata", "campaign_smoke_grid.json"), "-json"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("positional and flags-only invocations differ")
	}
}
