package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRunOneCheapExperiments(t *testing.T) {
	for _, name := range []string{"fig3a", "fig3b", "eq4", "dsweep", "noise"} {
		var buf bytes.Buffer
		if err := runOne(&buf, name, 1, 0, false); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: no output", name)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne(io.Discard, "nope", 1, 0, true); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunArgHandling(t *testing.T) {
	if err := run(io.Discard, nil); err == nil {
		t.Error("missing experiment must fail")
	}
	if err := run(io.Discard, []string{"fig3b"}); err != nil {
		t.Errorf("fig3b: %v", err)
	}
	if err := run(io.Discard, []string{"fig3b", "-json"}); err != nil {
		t.Errorf("fig3b -json: %v", err)
	}
	if err := run(io.Discard, []string{"fig3b", "-bogus"}); err == nil {
		t.Error("bad flag must fail")
	}
}

// TestJSONByteDeterminism: two identical -json invocations must produce
// byte-identical output — the property the golden harness and any downstream
// diff tooling rely on.
func TestJSONByteDeterminism(t *testing.T) {
	for _, name := range []string{"fig3a", "fig3b", "eq4", "dsweep", "noise"} {
		var a, b bytes.Buffer
		if err := runOne(&a, name, 1, 0, true); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := runOne(&b, name, 1, 0, true); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: -json output differs between identical runs", name)
		}
	}
}

// TestJSONSurvivesInf: fig3a's empty wedges carry ±Inf, which encoding/json
// rejects outright; the canonical encoder must emit valid JSON with string
// sentinels instead.
func TestJSONSurvivesInf(t *testing.T) {
	var buf bytes.Buffer
	if err := runOne(&buf, "fig3a", 1, 0, true); err != nil {
		t.Fatalf("fig3a -json: %v", err)
	}
	var v any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("fig3a -json is not valid JSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"Infinity"`) {
		t.Error("expected an Infinity sentinel in fig3a JSON output")
	}
}
