package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTxsimCSVOutput(t *testing.T) {
	var out, diag bytes.Buffer
	err := run([]string{"-mod", "QPSK", "-npsd", "4096", "-evm"}, &out, &diag)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "freq_hz,psd_db") {
		t.Error("CSV header missing")
	}
	if lines := strings.Count(out.String(), "\n"); lines < 100 {
		t.Errorf("only %d CSV lines", lines)
	}
	if !strings.Contains(diag.String(), "EVM:") {
		t.Errorf("EVM line missing: %s", diag.String())
	}
}

func TestTxsimPAAndImpairments(t *testing.T) {
	var out, diag bytes.Buffer
	if err := run([]string{"-pa", "rapp", "-vsat", "0.8", "-iqphase", "5", "-npsd", "4096"}, &out, &diag); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diag.String(), "rapp") || !strings.Contains(diag.String(), "IQ") {
		t.Errorf("chain description wrong: %s", diag.String())
	}
	if err := run([]string{"-pa", "saleh", "-npsd", "4096"}, &out, &diag); err != nil {
		t.Fatal(err)
	}
}

func TestTxsimErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mod", "NOPE"}, &buf, &buf); err == nil {
		t.Error("unknown constellation must fail")
	}
	if err := run([]string{"-pa", "nope"}, &buf, &buf); err == nil {
		t.Error("unknown PA must fail")
	}
	if err := run([]string{"-alpha", "2"}, &buf, &buf); err == nil {
		t.Error("bad roll-off must fail")
	}
	if err := run([]string{"-bogus"}, &buf, &buf); err == nil {
		t.Error("bad flag must fail")
	}
}
