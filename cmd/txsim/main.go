// Command txsim inspects the homodyne transmitter behavioural model: it
// generates the configured waveform, applies the impairment chain and dumps
// the RF-referred power spectral density (and optionally the EVM measured
// by an ideal matched-filter receiver) as CSV on stdout.
//
// Example:
//
//	txsim -mod QPSK -rate 10e6 -fc 1e9 -iqgain 1 -iqphase 5 -pa rapp -vsat 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/par"
	"repro/internal/rf"
	"repro/internal/sig"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "txsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out, diag io.Writer) error {
	fs2 := flag.NewFlagSet("txsim", flag.ContinueOnError)
	mod := fs2.String("mod", "QPSK", "constellation: BPSK, QPSK, 8PSK, 16QAM, 64QAM")
	rate := fs2.Float64("rate", 10e6, "symbol rate [Hz]")
	alpha := fs2.Float64("alpha", 0.5, "SRRC roll-off")
	fc := fs2.Float64("fc", 1e9, "carrier frequency [Hz]")
	nsym := fs2.Int("symbols", 256, "symbol stream length (cyclic)")
	seed := fs2.Int64("seed", 1, "symbol seed")
	power := fs2.Float64("power", 0.5, "mean baseband power |env|^2")
	iqGainDB := fs2.Float64("iqgain", 0, "IQ gain imbalance [dB]")
	iqPhaseDeg := fs2.Float64("iqphase", 0, "IQ phase error [deg]")
	loLeak := fs2.Float64("loleak", 0, "LO leakage amplitude (baseband volts)")
	paModel := fs2.String("pa", "none", "PA model: none, rapp, saleh")
	vsat := fs2.Float64("vsat", 1.0, "Rapp saturation amplitude")
	evm := fs2.Bool("evm", false, "also measure EVM with an ideal receiver")
	npsd := fs2.Int("npsd", 8192, "PSD sample count")
	seg := fs2.Int("seg", 1024, "Welch segment length (frequency resolution vs variance)")
	if err := fs2.Parse(args); err != nil {
		return err
	}

	cst, err := modem.ByName(*mod)
	if err != nil {
		return err
	}
	pulse, err := modem.NewSRRC(1 / *rate, *alpha, 8)
	if err != nil {
		return err
	}
	syms := cst.RandomSymbols(*nsym, *seed)
	bb, err := modem.NewShapedEnvelope(syms, pulse, true)
	if err != nil {
		return err
	}
	bb.SetAvgPower(*power, 4096)

	cfg := rf.TxConfig{Fc: *fc}
	if *iqGainDB != 0 || *iqPhaseDeg != 0 || *loLeak != 0 {
		cfg.IQ = rf.FromImbalanceDB(*iqGainDB, *iqPhaseDeg, complex(*loLeak, 0))
	}
	switch *paModel {
	case "none":
	case "rapp":
		pa, err := rf.NewRappPA(1, *vsat, 2)
		if err != nil {
			return err
		}
		cfg.PA = pa
	case "saleh":
		cfg.PA = rf.NewSalehPA(0, 0, 0, 0)
	default:
		return fmt.Errorf("unknown PA model %q", *paModel)
	}
	tx, err := rf.NewTransmitter(cfg, bb)
	if err != nil {
		return err
	}
	fmt.Fprintln(diag, tx.Describe())

	// PSD of the output envelope at 4x the occupied bandwidth. The envelope
	// evaluations are independent per instant, so they fan out over the
	// worker pool (the impairment chain is the per-sample hot path here).
	fs := 4 * (*rate) * (1 + *alpha)
	xs := make([]complex128, *npsd)
	env := tx.OutputEnvelope()
	sampleEnvelope(env, fs, xs)
	spec, err := dsp.WelchComplex(xs, fs, *fc, dsp.DefaultWelch(*seg))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "freq_hz,psd_db")
	db := spec.PSDdB()
	for i, f := range spec.Freqs {
		fmt.Fprintf(out, "%.0f,%.2f\n", f, db[i])
	}

	if *evm {
		mf, err := modem.NewMatchedFilter(pulse, 16)
		if err != nil {
			return err
		}
		got := mf.Demod(env, 4, 64)
		ref := make([]complex128, 64)
		copy(ref, symsAt(syms, 4, 64))
		norm, err := modem.NormalizeScaleAndPhase(got, ref)
		if err != nil {
			return err
		}
		res, err := modem.EVM(norm, ref)
		if err != nil {
			return err
		}
		fmt.Fprintf(diag, "EVM: %.2f%% rms (%.2f dB), %.2f%% peak\n",
			res.RMSPercent, res.DB, res.PeakPercent)
	}
	return nil
}

// sampleEnvelope evaluates the envelope on the uniform grid i/fs into the
// caller's buffer — the same write-into idiom as pnbs.AtTimesInto /
// EnvelopeInto, so repeated invocations (sweep scripts calling run() in a
// loop) can reuse one buffer and the fan-out itself never allocates.
func sampleEnvelope(env sig.Envelope, fs float64, out []complex128) {
	par.For(len(out), func(i int) {
		out[i] = env.At(float64(i) / fs)
	})
}

// symsAt returns n symbols from the cyclic stream starting at k0.
func symsAt(syms []complex128, k0, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = syms[(k0+i)%len(syms)]
	}
	return out
}
