// Command maskcheck runs one complete BIST execution described by a JSON
// configuration file (or the built-in paper scenario) and prints the
// structured report. Exit status 0 = unit passes, 2 = unit fails, 1 =
// execution error.
//
// Example configuration:
//
//	{
//	  "constellation": "QPSK",
//	  "symbolRateHz": 10e6,
//	  "carrierHz": 1e9,
//	  "captureRateHz": 90e6,
//	  "nominalDelayPs": 180,
//	  "mask": "wideband-qpsk-15M",
//	  "fault": "pa-compression",
//	  "irrTest": true
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/mask"
)

// fileConfig is the JSON surface of the tool.
type fileConfig struct {
	Constellation  string  `json:"constellation"`
	SymbolRateHz   float64 `json:"symbolRateHz"`
	RollOff        float64 `json:"rollOff"`
	CarrierHz      float64 `json:"carrierHz"`
	CaptureRateHz  float64 `json:"captureRateHz"`
	NominalDelayPs float64 `json:"nominalDelayPs"`
	Mask           string  `json:"mask"`
	// CustomMask defines a mask inline instead of naming a built-in:
	// {"name": ..., "channelBwHz": ..., "refBwHz": ...,
	//  "points": [{"offsetHz": ..., "limitDBc": ...}, ...]}.
	CustomMask *customMask `json:"customMask"`
	Fault      string      `json:"fault"`
	IRRTest    bool        `json:"irrTest"`
	EVMTest    bool        `json:"evmTest"`
	Seed       int64       `json:"seed"`
	Scale      float64     `json:"scale"`
}

// customMask mirrors mask.Mask with JSON-friendly field names.
type customMask struct {
	Name        string  `json:"name"`
	ChannelBwHz float64 `json:"channelBwHz"`
	RefBwHz     float64 `json:"refBwHz"`
	Points      []struct {
		OffsetHz float64 `json:"offsetHz"`
		LimitDBc float64 `json:"limitDBc"`
	} `json:"points"`
}

// toMask converts and validates a custom mask definition.
func (c *customMask) toMask() (*mask.Mask, error) {
	m := &mask.Mask{Name: c.Name, ChannelBW: c.ChannelBwHz, RefBW: c.RefBwHz}
	if m.Name == "" {
		m.Name = "custom"
	}
	for _, p := range c.Points {
		m.Points = append(m.Points, mask.Point{OffsetHz: p.OffsetHz, LimitDBc: p.LimitDBc})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maskcheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("maskcheck", flag.ContinueOnError)
	path := fs.String("config", "", "JSON configuration file (default: paper scenario)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}

	cfg := core.PaperScenario()
	var fc fileConfig
	if *path != "" {
		data, err := os.ReadFile(*path)
		if err != nil {
			return 1, err
		}
		if err := json.Unmarshal(data, &fc); err != nil {
			return 1, fmt.Errorf("parsing %s: %w", *path, err)
		}
		if fc.Constellation != "" {
			cfg.Constellation = fc.Constellation
		}
		if fc.SymbolRateHz > 0 {
			cfg.SymbolRate = fc.SymbolRateHz
		}
		if fc.RollOff > 0 {
			cfg.RollOff = fc.RollOff
		}
		if fc.CarrierHz > 0 {
			cfg.Fc = fc.CarrierHz
			cfg.TI.DCDE.Max = 0.35 / fc.CarrierHz
			cfg.NominalD = 0
			cfg.D0 = 0
		}
		if fc.CaptureRateHz > 0 {
			cfg.B = fc.CaptureRateHz
		}
		if fc.NominalDelayPs > 0 {
			cfg.NominalD = fc.NominalDelayPs * 1e-12
			cfg.D0 = cfg.NominalD
		}
		if fc.Mask != "" {
			m, ok := mask.ByName(fc.Mask)
			if !ok {
				return 1, fmt.Errorf("unknown mask %q (have %v)", fc.Mask, mask.Names())
			}
			cfg.Mask = m
		}
		if fc.CustomMask != nil {
			m, err := fc.CustomMask.toMask()
			if err != nil {
				return 1, fmt.Errorf("custom mask: %w", err)
			}
			cfg.Mask = m
		}
		if fc.Seed != 0 {
			cfg.Seed = fc.Seed
		}
		cfg.IRRTest = cfg.IRRTest || fc.IRRTest
		cfg.EVMTest = cfg.EVMTest || fc.EVMTest
		if fc.Scale > 0 && fc.Scale < 1 {
			cfg.CaptureLen = int(float64(cfg.CaptureLen) * fc.Scale)
			cfg.NTimes = int(float64(cfg.NTimes) * fc.Scale)
			cfg.PSDLen = int(float64(cfg.PSDLen) * fc.Scale)
			cfg.SegLen = cfg.PSDLen / 4
		}
		if fc.Fault != "" {
			f, err := core.FaultByName(fc.Fault)
			if err != nil {
				return 1, err
			}
			f.Apply(&cfg)
		}
	}

	b, err := core.New(cfg)
	if err != nil {
		return 1, err
	}
	rep, err := b.Run()
	if err != nil {
		return 1, err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 1, err
		}
	} else {
		fmt.Fprint(out, rep.Summary())
	}
	if !rep.Pass {
		return 2, nil
	}
	return 0, nil
}
