package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "unit.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHealthyUnitJSON(t *testing.T) {
	cfg := writeConfig(t, `{"scale": 0.35, "seed": 3}`)
	var out bytes.Buffer
	code, err := run([]string{"-config", cfg, "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("healthy unit exit code %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), `"Pass": true`) {
		t.Errorf("JSON output missing pass flag:\n%s", out.String())
	}
}

func TestFaultyUnitExitCode(t *testing.T) {
	cfg := writeConfig(t, `{"scale": 0.35, "fault": "pa-compression"}`)
	var out bytes.Buffer
	code, err := run([]string{"-config", cfg}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("faulty unit exit code %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Error("text output missing FAIL")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := run([]string{"-config", "/nonexistent.json"}, &bytes.Buffer{}); err == nil {
		t.Error("missing config must fail")
	}
	bad := writeConfig(t, `{not json`)
	if _, err := run([]string{"-config", bad}, &bytes.Buffer{}); err == nil {
		t.Error("bad JSON must fail")
	}
	badMask := writeConfig(t, `{"mask": "nope"}`)
	if _, err := run([]string{"-config", badMask}, &bytes.Buffer{}); err == nil {
		t.Error("unknown mask must fail")
	}
	badFault := writeConfig(t, `{"fault": "nope"}`)
	if _, err := run([]string{"-config", badFault}, &bytes.Buffer{}); err == nil {
		t.Error("unknown fault must fail")
	}
	if _, err := run([]string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestCustomMaskAndEVM(t *testing.T) {
	cfg := writeConfig(t, `{
		"scale": 0.35,
		"evmTest": true,
		"customMask": {
			"name": "my-mask",
			"channelBwHz": 15e6,
			"refBwHz": 100e3,
			"points": [
				{"offsetHz": 7.5e6, "limitDBc": -24},
				{"offsetHz": 35e6, "limitDBc": -46}
			]
		}
	}`)
	var out bytes.Buffer
	code, err := run([]string{"-config", cfg}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "my-mask") || !strings.Contains(out.String(), "EVM") {
		t.Errorf("output missing custom mask / EVM:\n%s", out.String())
	}
}

func TestCustomMaskInvalid(t *testing.T) {
	cfg := writeConfig(t, `{"customMask": {"channelBwHz": 0, "refBwHz": 1, "points": []}}`)
	if _, err := run([]string{"-config", cfg}, &bytes.Buffer{}); err == nil {
		t.Error("invalid custom mask must fail")
	}
}
