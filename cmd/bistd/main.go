// bistd is the BIST campaign fleet daemon: a long-running service that
// accepts campaign grids over HTTP/JSON, executes their (stimulus, fault,
// unit) cells across a bounded worker queue, streams per-unit verdicts and
// running yield as NDJSON, and checkpoints progress so a killed process
// resumes — byte-identical — where it stopped.
//
// Three modes:
//
//	bistd -addr :8077 -checkpoint-dir /var/lib/bist   serve (default)
//	bistd -submit grid.json -server http://host:8077  client: run one
//	      campaign to completion and print its matrix
//	bistd -merge -grid grid.json a.ckpt.json b.ckpt.json
//	      merge shard checkpoints into the full matrix
//
// Sharding: start one process per shard with -shard i/n and a shared or
// per-host checkpoint dir; each owns a disjoint strided slice of every
// campaign's sorted cell list, and -merge folds the shard checkpoints into
// bytes identical to an unsharded run.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/obs/eventlog"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address (server mode)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (lets scripts use -addr :0)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for campaign checkpoints; empty disables durability")
		ckptEvery  = flag.Int("checkpoint-every", 1, "completed cells between checkpoint writes")
		shardSpec  = flag.String("shard", "0/1", "this process's cell partition, as i/n")
		queueDepth = flag.Int("queue", 16, "campaign admission queue depth")
		workers    = flag.Int("workers", 0, "cell worker count (0: BIST_WORKERS or GOMAXPROCS)")
		withPprof  = flag.Bool("pprof", false, "expose /debug/pprof")
		drainSecs  = flag.Int("drain", 30, "seconds to wait for in-flight cells on shutdown")
		logJSON    = flag.Bool("log-json", false, "emit the event log as canonical JSON lines instead of text")
		watchdogIv = flag.Duration("watchdog-interval", time.Second, "fleet health sampling interval (0 disables the watchdog)")

		submit  = flag.String("submit", "", "client mode: grid JSON file to run against -server")
		server  = flag.String("server", "http://127.0.0.1:8077", "client mode: bistd base URL")
		name    = flag.String("name", "", "client mode: campaign label")
		doTrace = flag.Bool("trace", false, "client mode: request a Perfetto trace")
		quiet   = flag.Bool("quiet", false, "client mode: suppress the event stream on stderr")
		timeout = flag.Duration("timeout", 10*time.Minute, "client mode: overall deadline")

		merge    = flag.Bool("merge", false, "merge mode: fold shard checkpoint files (args) into the full matrix")
		gridFile = flag.String("grid", "", "merge mode: grid JSON the checkpoints belong to")
	)
	flag.Parse()
	obs.Enable()
	// Every lifecycle message goes through the structured event log; the
	// stream lands on stderr as slog text by default, canonical JSON with
	// -log-json (one compact object per line, fixed key order).
	if *logJSON {
		eventlog.Set(slog.New(eventlog.NewJSONHandler(os.Stderr)))
	} else {
		eventlog.Set(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}

	var err error
	switch {
	case *merge:
		err = runMerge(*gridFile, flag.Args())
	case *submit != "":
		err = runClient(*server, *submit, *name, *doTrace, *quiet, *timeout)
	default:
		err = runServer(serverOpts{
			addr: *addr, addrFile: *addrFile,
			ckptDir: *ckptDir, ckptEvery: *ckptEvery,
			shard: *shardSpec, queueDepth: *queueDepth, workers: *workers,
			withPprof: *withPprof, drain: time.Duration(*drainSecs) * time.Second,
			watchdog: *watchdogIv,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bistd:", err)
		os.Exit(1)
	}
}

type serverOpts struct {
	addr, addrFile string
	ckptDir        string
	ckptEvery      int
	shard          string
	queueDepth     int
	workers        int
	withPprof      bool
	drain          time.Duration
	watchdog       time.Duration
}

// runServer stands the fleet up and blocks until SIGINT/SIGTERM, then
// drains: stop scheduling cells, finish in-flight ones, write the final
// checkpoints, stop the HTTP server gracefully.
func runServer(o serverOpts) error {
	sh, err := fleet.ParseShard(o.shard)
	if err != nil {
		return err
	}
	fs, err := fleet.NewServer(fleet.Config{
		CheckpointDir:   o.ckptDir,
		CheckpointEvery: o.ckptEvery,
		Shard:           sh,
		QueueDepth:      o.queueDepth,
		Workers:         o.workers,
	})
	if err != nil {
		return err
	}
	hs, err := httpx.Serve(o.addr, fs.Handler(o.withPprof))
	if err != nil {
		return err
	}
	if o.addrFile != "" {
		// Atomic write: pollers must never read a half-written address.
		tmp := o.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(hs.Addr()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, o.addrFile); err != nil {
			return err
		}
	}
	if o.watchdog > 0 {
		fs.StartWatchdog(fleet.WatchdogConfig{Interval: o.watchdog})
	}
	eventlog.Emit("bistd.listening",
		slog.String("addr", hs.Addr()),
		slog.Int("shard_index", sh.Index),
		slog.Int("shard_count", sh.Count),
		slog.String("checkpoints", orNone(o.ckptDir)))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	eventlog.Emit("bistd.draining")

	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	ferr := fs.Shutdown(ctx) // cells drain + final checkpoints first,
	herr := hs.Shutdown(ctx) // then in-flight HTTP (streams end with the campaigns)
	if ferr != nil {
		return ferr
	}
	return herr
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

// runClient submits one grid and runs it to completion: POST the spec,
// relay the NDJSON stream to stderr, and print the final canonical matrix
// to stdout. Exit is non-zero unless the campaign reaches "done".
func runClient(base, gridPath, name string, doTrace, quiet bool, timeout time.Duration) error {
	gridData, err := os.ReadFile(gridPath)
	if err != nil {
		return err
	}
	g, err := campaign.ParseGrid(gridData)
	if err != nil {
		return err
	}
	spec := fleet.Spec{Name: name, Grid: g, Trace: doTrace}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	base = strings.TrimRight(base, "/")

	st, err := postSpec(ctx, base, body)
	if err != nil {
		return err
	}
	eventlog.Emit("bistd.campaign",
		slog.String("campaign", st.ID),
		slog.String("state", st.State))

	final, err := followStream(ctx, base, st.ID, quiet)
	if err != nil {
		return err
	}
	if final.State != fleet.StateDone {
		return fmt.Errorf("campaign %s ended %s: %s", final.ID, final.State, final.Error)
	}
	matrix, err := getBody(ctx, base+"/campaigns/"+final.ID+"/matrix")
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(matrix)
	return err
}

func postSpec(ctx context.Context, base string, body []byte) (fleet.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/campaigns", bytes.NewReader(body))
	if err != nil {
		return fleet.Status{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fleet.Status{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fleet.Status{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fleet.Status{}, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var st fleet.Status
	if err := json.Unmarshal(data, &st); err != nil {
		return fleet.Status{}, fmt.Errorf("submit: bad status body: %w", err)
	}
	return st, nil
}

// followStream relays the campaign's NDJSON events until the stream ends,
// returning the last state event seen.
func followStream(ctx context.Context, base, id string, quiet bool) (fleet.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/campaigns/"+id+"/stream", nil)
	if err != nil {
		return fleet.Status{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fleet.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet.Status{}, fmt.Errorf("stream: %s", resp.Status)
	}
	var last fleet.Status
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if !quiet {
			fmt.Fprintf(os.Stderr, "%s\n", line)
		}
		var ev struct {
			Type   string
			Status fleet.Status
		}
		if err := json.Unmarshal(line, &ev); err == nil && ev.Type == "state" {
			last = ev.Status
		}
	}
	if err := sc.Err(); err != nil {
		return last, fmt.Errorf("stream: %w", err)
	}
	return last, nil
}

func getBody(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

// runMerge folds shard checkpoint files into the full detection matrix on
// stdout. Refuses gaps and overlaps — the merge must cover every cell of
// the grid exactly once to claim byte-identity with a single-process run.
func runMerge(gridPath string, ckptPaths []string) error {
	if gridPath == "" {
		return fmt.Errorf("merge: -grid is required")
	}
	if len(ckptPaths) == 0 {
		return fmt.Errorf("merge: no checkpoint files given")
	}
	gridData, err := os.ReadFile(gridPath)
	if err != nil {
		return err
	}
	g, err := campaign.ParseGrid(gridData)
	if err != nil {
		return err
	}
	var cks []*campaign.Checkpoint
	for _, path := range ckptPaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		ck, err := campaign.ParseCheckpoint(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		cks = append(cks, ck)
	}
	m, err := campaign.MergeCheckpoints(g, cks...)
	if err != nil {
		return err
	}
	b, err := m.MarshalCanonical()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}
